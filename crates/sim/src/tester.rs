//! The tester's view of responses: scan chains and fail logs.
//!
//! Production testers do not hand diagnosis a tidy response matrix — they
//! emit a *datalog* of failing observations: "test 17, scan chain 2, cell
//! 31 read the wrong value". This module models that boundary:
//!
//! * [`ScanChains`] assigns every flip-flop to a position on a scan chain,
//!   mapping each observed output of a [`CombView`] to a tester-visible
//!   [`Observation`];
//! * [`FailLog`] is the datalog: the set of failing observations per test,
//!   convertible losslessly to and from observed response vectors given the
//!   fault-free responses (which the tester always knows).
//!
//! Diagnosis flows read a fail log, reconstruct the observed responses, and
//! proceed with any dictionary in this workspace.

use std::fmt;

use sdd_logic::BitVec;
use sdd_netlist::{Circuit, NetId};

/// One tester-visible observation point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Observation {
    /// A primary output, by position in the circuit's output list.
    PrimaryOutput(u32),
    /// A scan cell, addressed by chain and position (0 = first cell
    /// shifted out).
    ScanCell {
        /// Scan chain index.
        chain: u32,
        /// Position along the chain.
        position: u32,
    },
}

impl fmt::Display for Observation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Observation::PrimaryOutput(po) => write!(f, "PO{po}"),
            Observation::ScanCell { chain, position } => write!(f, "chain{chain}[{position}]"),
        }
    }
}

/// An assignment of every flip-flop to a scan-chain position.
///
/// # Example
///
/// ```
/// use sdd_sim::ScanChains;
///
/// let demo = sdd_netlist::library::demo_seq();
/// let chains = ScanChains::balanced(&demo, 2);
/// assert_eq!(chains.chain_count(), 2);
/// assert_eq!(chains.cell_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanChains {
    /// Flip-flop output nets in shift order, per chain.
    chains: Vec<Vec<NetId>>,
}

impl ScanChains {
    /// Puts all flip-flops on one chain, in declaration order.
    pub fn single(circuit: &Circuit) -> Self {
        Self::balanced(circuit, 1)
    }

    /// Distributes the flip-flops round-robin over `count` chains.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn balanced(circuit: &Circuit, count: usize) -> Self {
        assert!(count > 0, "at least one scan chain");
        let mut chains = vec![Vec::new(); count];
        for (i, &q) in circuit.dffs().iter().enumerate() {
            chains[i % count].push(q);
        }
        Self { chains }
    }

    /// Number of chains.
    pub fn chain_count(&self) -> usize {
        self.chains.len()
    }

    /// Total number of scan cells.
    pub fn cell_count(&self) -> usize {
        self.chains.iter().map(Vec::len).sum()
    }

    /// The cells of chain `chain`, in shift order.
    pub fn chain(&self, chain: usize) -> &[NetId] {
        &self.chains[chain]
    }

    /// Maps a view-output position (PO's first, then flip-flop data nets in
    /// declaration order) to its tester observation point.
    ///
    /// # Panics
    ///
    /// Panics if `output` is out of range for the view.
    pub fn observation_of(&self, circuit: &Circuit, output: usize) -> Observation {
        let pos = circuit.output_count();
        if output < pos {
            return Observation::PrimaryOutput(output as u32);
        }
        let dff_index = output - pos;
        assert!(
            dff_index < circuit.dff_count(),
            "output {output} out of range"
        );
        let q = circuit.dffs()[dff_index];
        for (chain, cells) in self.chains.iter().enumerate() {
            if let Some(position) = cells.iter().position(|&c| c == q) {
                return Observation::ScanCell {
                    chain: chain as u32,
                    position: position as u32,
                };
            }
        }
        unreachable!("every flip-flop is on a chain")
    }

    /// The view-output position observed at `observation` — the inverse of
    /// [`observation_of`](Self::observation_of).
    ///
    /// Returns `None` for out-of-range observations.
    pub fn output_of(&self, circuit: &Circuit, observation: Observation) -> Option<usize> {
        match observation {
            Observation::PrimaryOutput(po) => {
                ((po as usize) < circuit.output_count()).then_some(po as usize)
            }
            Observation::ScanCell { chain, position } => {
                let q = *self.chains.get(chain as usize)?.get(position as usize)?;
                let dff_index = circuit.dffs().iter().position(|&c| c == q)?;
                Some(circuit.output_count() + dff_index)
            }
        }
    }
}

/// One failing observation in a tester datalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FailEntry {
    /// The failing test's index.
    pub test: u32,
    /// Where the wrong value was observed.
    pub observation: Observation,
}

/// A tester datalog: every observation that mismatched the expected value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailLog {
    /// Failing observations, sorted by test then observation.
    pub entries: Vec<FailEntry>,
}

impl FailLog {
    /// Builds the log a tester would emit: every position where `observed`
    /// differs from the fault-free `expected`.
    ///
    /// # Panics
    ///
    /// Panics if the slices disagree in length or width.
    pub fn from_responses(
        circuit: &Circuit,
        chains: &ScanChains,
        observed: &[BitVec],
        expected: &[BitVec],
    ) -> Self {
        assert_eq!(observed.len(), expected.len(), "one response per test");
        let mut entries = Vec::new();
        for (test, (seen, good)) in observed.iter().zip(expected).enumerate() {
            assert_eq!(seen.len(), good.len(), "response width mismatch");
            for output in 0..seen.len() {
                if seen.bit(output) != good.bit(output) {
                    entries.push(FailEntry {
                        test: test as u32,
                        observation: chains.observation_of(circuit, output),
                    });
                }
            }
        }
        entries.sort_unstable();
        Self { entries }
    }

    /// Reconstructs the observed responses from the log and the fault-free
    /// responses — what a diagnosis tool does with a datalog.
    ///
    /// Unknown observation points are ignored (testers sometimes log
    /// entries for masked cells).
    pub fn to_responses(
        &self,
        circuit: &Circuit,
        chains: &ScanChains,
        expected: &[BitVec],
    ) -> Vec<BitVec> {
        let mut responses: Vec<BitVec> = expected.to_vec();
        for entry in &self.entries {
            if let Some(output) = chains.output_of(circuit, entry.observation) {
                if let Some(response) = responses.get_mut(entry.test as usize) {
                    if output < response.len() {
                        response.toggle(output);
                    }
                }
            }
        }
        responses
    }

    /// Number of failing observations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the device passed every test.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The failing tests, deduplicated, in order.
    pub fn failing_tests(&self) -> Vec<u32> {
        let mut tests: Vec<u32> = self.entries.iter().map(|e| e.test).collect();
        tests.dedup();
        tests
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sdd_fault::FaultUniverse;
    use sdd_netlist::generator;
    use sdd_netlist::library::demo_seq;

    fn all_patterns(width: usize) -> Vec<BitVec> {
        (0u32..1 << width)
            .map(|w| (0..width).map(|i| w >> i & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn observation_mapping_round_trips() {
        let c = generator::iscas89("s298", 1).unwrap();
        let view = sdd_netlist::CombView::new(&c);
        for count in [1, 2, 5] {
            let chains = ScanChains::balanced(&c, count);
            assert_eq!(chains.cell_count(), c.dff_count());
            for output in 0..view.outputs().len() {
                let obs = chains.observation_of(&c, output);
                assert_eq!(chains.output_of(&c, obs), Some(output), "{obs}");
            }
        }
    }

    #[test]
    fn primary_outputs_map_to_po_observations() {
        let c = demo_seq();
        let chains = ScanChains::single(&c);
        assert_eq!(chains.observation_of(&c, 0), Observation::PrimaryOutput(0));
        assert_eq!(chains.observation_of(&c, 1), Observation::PrimaryOutput(1));
        assert!(matches!(
            chains.observation_of(&c, 2),
            Observation::ScanCell {
                chain: 0,
                position: 0
            }
        ));
    }

    #[test]
    fn fail_log_round_trips_responses() {
        let c = demo_seq();
        let view = sdd_netlist::CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let chains = ScanChains::balanced(&c, 2);
        let tests = all_patterns(view.inputs().len());
        let expected: Vec<BitVec> = tests
            .iter()
            .map(|t| reference::good_response(&c, &view, t))
            .collect();
        for (_, fault) in universe.iter() {
            let observed: Vec<BitVec> = tests
                .iter()
                .map(|t| reference::faulty_response(&c, &view, fault, t))
                .collect();
            let log = FailLog::from_responses(&c, &chains, &observed, &expected);
            let back = log.to_responses(&c, &chains, &expected);
            assert_eq!(back, observed, "{}", fault.describe(&c));
        }
    }

    #[test]
    fn passing_device_has_empty_log() {
        let c = demo_seq();
        let view = sdd_netlist::CombView::new(&c);
        let chains = ScanChains::single(&c);
        let tests = all_patterns(view.inputs().len());
        let expected: Vec<BitVec> = tests
            .iter()
            .map(|t| reference::good_response(&c, &view, t))
            .collect();
        let log = FailLog::from_responses(&c, &chains, &expected, &expected);
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        assert!(log.failing_tests().is_empty());
    }

    #[test]
    fn failing_tests_are_deduplicated_and_sorted() {
        let log = FailLog {
            entries: vec![
                FailEntry {
                    test: 1,
                    observation: Observation::PrimaryOutput(0),
                },
                FailEntry {
                    test: 1,
                    observation: Observation::PrimaryOutput(1),
                },
                FailEntry {
                    test: 4,
                    observation: Observation::PrimaryOutput(0),
                },
            ],
        };
        assert_eq!(log.failing_tests(), vec![1, 4]);
    }

    #[test]
    fn unknown_observations_are_ignored_on_reconstruction() {
        let c = demo_seq();
        let chains = ScanChains::single(&c);
        let expected = vec![BitVec::zeros(4)];
        let log = FailLog {
            entries: vec![FailEntry {
                test: 0,
                observation: Observation::ScanCell {
                    chain: 9,
                    position: 0,
                },
            }],
        };
        let back = log.to_responses(&c, &chains, &expected);
        assert_eq!(back, expected, "bogus observation silently dropped");
    }

    #[test]
    #[should_panic(expected = "at least one scan chain")]
    fn zero_chains_panics() {
        ScanChains::balanced(&demo_seq(), 0);
    }
}
