//! The production simulator: compiled fault-free evaluation plus
//! event-driven parallel-pattern single-fault propagation (PPSFP).

use sdd_fault::{Fault, FaultSite};
use sdd_logic::{BitVec, PatternBlock};
use sdd_netlist::{Circuit, CombView, Driver, GateKind, NetId};

/// The observable consequence of one fault over one pattern block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEffect {
    /// Lanes (patterns) in which at least one output differs from the
    /// fault-free response.
    pub detect: u64,
    /// `(output position, diff word)` for every output whose word differs,
    /// in ascending output order. Bit `p` of a diff word means the output
    /// differs under pattern `p`.
    pub output_diffs: Vec<(u32, u64)>,
}

impl FaultEffect {
    /// The faulty response of lane `lane`, reconstructed from the
    /// fault-free response `good`.
    ///
    /// # Panics
    ///
    /// Panics if an output position exceeds `good.len()`.
    pub fn faulty_response(&self, good: &BitVec, lane: usize) -> BitVec {
        let mut response = good.clone();
        for &(pos, word) in &self.output_diffs {
            if word >> lane & 1 == 1 {
                response.toggle(pos as usize);
            }
        }
        response
    }
}

/// A reusable PPSFP simulation engine bound to one circuit view.
///
/// Typical use: [`load_block`](Engine::load_block) a [`PatternBlock`] of up
/// to 64 tests, then call [`run_fault`](Engine::run_fault) for each fault of
/// interest. The engine keeps all scratch state internally, so a single
/// engine amortizes allocations across millions of fault passes.
///
/// # Example
///
/// ```
/// use sdd_fault::FaultUniverse;
/// use sdd_logic::{BitVec, PatternBlock};
/// use sdd_netlist::{library, CombView};
/// use sdd_sim::Engine;
///
/// let c17 = library::c17();
/// let view = CombView::new(&c17);
/// let mut engine = Engine::new(&c17, &view);
/// let tests: Vec<BitVec> = vec!["10111".parse()?, "01101".parse()?];
/// engine.load_block(&PatternBlock::from_patterns(5, &tests));
/// let universe = FaultUniverse::enumerate(&c17);
/// let effect = engine.run_fault(universe.fault(sdd_fault::FaultId(0)));
/// assert_eq!(effect.detect & !0b11, 0, "only loaded lanes can detect");
/// # Ok::<(), sdd_logic::ParseBitVecError>(())
/// ```
#[derive(Debug)]
pub struct Engine<'a> {
    circuit: &'a Circuit,
    view: &'a CombView,
    /// Gate nets consuming each net (sinks to re-evaluate on change).
    fanout_gates: Vec<Vec<NetId>>,
    good: Vec<u64>,
    value: Vec<u64>,
    lane_mask: u64,
    pattern_count: usize,
    buckets: Vec<Vec<NetId>>,
    queued: Vec<bool>,
    touched: Vec<NetId>,
    loaded: bool,
}

impl<'a> Engine<'a> {
    /// Creates an engine for `circuit` as seen through `view`.
    pub fn new(circuit: &'a Circuit, view: &'a CombView) -> Self {
        let mut fanout_gates = vec![Vec::new(); circuit.net_count()];
        for net in circuit.nets() {
            if let Driver::Gate { inputs, .. } = circuit.driver(net) {
                for &source in inputs {
                    fanout_gates[source.index()].push(net);
                }
            }
        }
        let depth = view.depth() as usize;
        Self {
            circuit,
            view,
            fanout_gates,
            good: vec![0; circuit.net_count()],
            value: vec![0; circuit.net_count()],
            lane_mask: 0,
            pattern_count: 0,
            buckets: vec![Vec::new(); depth + 1],
            queued: vec![false; circuit.net_count()],
            touched: Vec::new(),
            loaded: false,
        }
    }

    /// Simulates the fault-free circuit for a block of patterns and latches
    /// the result as the baseline for subsequent [`run_fault`](Self::run_fault)
    /// calls.
    ///
    /// # Panics
    ///
    /// Panics if the block's input count differs from the view's.
    pub fn load_block(&mut self, block: &PatternBlock) {
        assert_eq!(
            block.input_count(),
            self.view.inputs().len(),
            "block width must match view inputs"
        );
        for &net in self.view.order() {
            let word = match self.circuit.driver(net) {
                Driver::Input | Driver::Dff { .. } => {
                    let pos = self
                        .view
                        .input_position(net)
                        .expect("sources are view inputs");
                    block.input_word(pos)
                }
                Driver::Gate { kind, inputs } => {
                    eval_words(*kind, inputs.iter().map(|&i| self.good[i.index()]))
                }
            };
            self.good[net.index()] = word;
        }
        self.value.copy_from_slice(&self.good);
        self.lane_mask = block.lane_mask();
        self.pattern_count = block.pattern_count();
        self.loaded = true;
    }

    /// Number of patterns in the loaded block.
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// The fault-free value word of `net` for the loaded block.
    pub fn good_word(&self, net: NetId) -> u64 {
        self.good[net.index()]
    }

    /// The fault-free output response of pattern `lane`.
    ///
    /// # Panics
    ///
    /// Panics if no block is loaded or `lane` exceeds the pattern count.
    pub fn good_response(&self, lane: usize) -> BitVec {
        assert!(self.loaded, "no block loaded");
        assert!(lane < self.pattern_count, "lane {lane} out of range");
        self.view
            .outputs()
            .iter()
            .map(|&o| self.good[o.index()] >> lane & 1 == 1)
            .collect()
    }

    /// Simulates `fault` against every pattern of the loaded block and
    /// returns its observable effect.
    ///
    /// # Panics
    ///
    /// Panics if no block is loaded.
    pub fn run_fault(&mut self, fault: Fault) -> FaultEffect {
        assert!(self.loaded, "no block loaded");
        let forced = if fault.stuck_at { u64::MAX } else { 0 };

        match fault.site {
            FaultSite::Stem(net) => {
                if self.value[net.index()] != forced {
                    self.value[net.index()] = forced;
                    self.touched.push(net);
                    self.schedule_sinks(net);
                }
            }
            FaultSite::Branch { gate, pin } => {
                let new = self.eval_gate(gate, Some((pin as usize, forced)));
                if new != self.value[gate.index()] {
                    self.value[gate.index()] = new;
                    self.touched.push(gate);
                    self.schedule_sinks(gate);
                }
            }
        }

        // Event-driven propagation: levels settle in ascending order.
        for level in 0..self.buckets.len() {
            while let Some(net) = self.buckets[level].pop() {
                self.queued[net.index()] = false;
                let new = self.eval_gate(net, None);
                if new != self.value[net.index()] {
                    if self.value[net.index()] == self.good[net.index()] {
                        self.touched.push(net);
                    }
                    self.value[net.index()] = new;
                    self.schedule_sinks(net);
                }
            }
        }

        // Harvest output differences.
        let mut detect = 0u64;
        let mut output_diffs = Vec::new();
        for (pos, &o) in self.view.outputs().iter().enumerate() {
            let diff = (self.value[o.index()] ^ self.good[o.index()]) & self.lane_mask;
            if diff != 0 {
                detect |= diff;
                output_diffs.push((pos as u32, diff));
            }
        }

        // Undo for the next fault.
        for net in self.touched.drain(..) {
            self.value[net.index()] = self.good[net.index()];
        }

        FaultEffect {
            detect,
            output_diffs,
        }
    }

    /// The lanes in which `fault` is detected — a cheaper façade over
    /// [`run_fault`](Self::run_fault) for detection-only callers like ATPG.
    pub fn detect_lanes(&mut self, fault: Fault) -> u64 {
        self.run_fault(fault).detect
    }

    fn schedule_sinks(&mut self, net: NetId) {
        // Split borrows: take the sink list via index to satisfy the
        // borrow checker without cloning.
        for i in 0..self.fanout_gates[net.index()].len() {
            let sink = self.fanout_gates[net.index()][i];
            if !self.queued[sink.index()] {
                self.queued[sink.index()] = true;
                self.buckets[self.view.level(sink) as usize].push(sink);
            }
        }
    }

    fn eval_gate(&self, net: NetId, force_pin: Option<(usize, u64)>) -> u64 {
        match self.circuit.driver(net) {
            Driver::Gate { kind, inputs } => eval_words(
                *kind,
                inputs
                    .iter()
                    .enumerate()
                    .map(|(pin, &source)| match force_pin {
                        Some((fp, word)) if fp == pin => word,
                        _ => self.value[source.index()],
                    }),
            ),
            // Inputs and flip-flop outputs never self-evaluate; a branch
            // fault can only sit on a gate.
            _ => self.value[net.index()],
        }
    }
}

/// Evaluates a gate over transposed pattern words.
fn eval_words(kind: GateKind, mut inputs: impl Iterator<Item = u64>) -> u64 {
    match kind {
        GateKind::And => inputs.fold(u64::MAX, |acc, w| acc & w),
        GateKind::Nand => !inputs.fold(u64::MAX, |acc, w| acc & w),
        GateKind::Or => inputs.fold(0, |acc, w| acc | w),
        GateKind::Nor => !inputs.fold(0, |acc, w| acc | w),
        GateKind::Xor => inputs.fold(0, |acc, w| acc ^ w),
        GateKind::Xnor => !inputs.fold(0, |acc, w| acc ^ w),
        GateKind::Not => !inputs.next().expect("NOT has one input"),
        GateKind::Buf => inputs.next().expect("BUFF has one input"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sdd_fault::FaultUniverse;
    use sdd_netlist::generator;
    use sdd_netlist::library::{c17, demo_seq};

    fn all_patterns(width: usize) -> Vec<BitVec> {
        (0u32..1 << width)
            .map(|word| (0..width).map(|i| word >> i & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn good_simulation_matches_reference_exhaustively() {
        let c = c17();
        let view = CombView::new(&c);
        let patterns = all_patterns(5);
        let mut engine = Engine::new(&c, &view);
        engine.load_block(&PatternBlock::from_patterns(5, &patterns[..32]));
        for (lane, pattern) in patterns.iter().take(32).enumerate() {
            assert_eq!(
                engine.good_response(lane),
                reference::good_response(&c, &view, pattern),
                "lane {lane}"
            );
        }
    }

    #[test]
    fn every_fault_matches_reference_on_c17() {
        let c = c17();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let patterns = all_patterns(5);
        let mut engine = Engine::new(&c, &view);
        engine.load_block(&PatternBlock::from_patterns(5, &patterns));
        for (_, fault) in universe.iter() {
            let effect = engine.run_fault(fault);
            for (lane, pattern) in patterns.iter().enumerate() {
                let expected = reference::faulty_response(&c, &view, fault, pattern);
                let good = engine.good_response(lane);
                let actual = effect.faulty_response(&good, lane);
                assert_eq!(actual, expected, "fault {fault:?} lane {lane}");
                let detected = effect.detect >> lane & 1 == 1;
                assert_eq!(detected, expected != good);
            }
        }
    }

    #[test]
    fn engine_state_is_clean_between_faults() {
        let c = c17();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let patterns = all_patterns(5);
        let mut engine = Engine::new(&c, &view);
        engine.load_block(&PatternBlock::from_patterns(5, &patterns));
        // Running the same fault repeatedly, interleaved with others, must
        // give identical results.
        let probe = universe.fault(sdd_fault::FaultId(5));
        let first = engine.run_fault(probe);
        for (_, fault) in universe.iter() {
            engine.run_fault(fault);
        }
        assert_eq!(engine.run_fault(probe), first);
    }

    #[test]
    fn sequential_circuit_matches_reference() {
        let c = demo_seq();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let width = view.inputs().len();
        let patterns = all_patterns(width);
        let mut engine = Engine::new(&c, &view);
        engine.load_block(&PatternBlock::from_patterns(width, &patterns));
        for (_, fault) in universe.iter() {
            let effect = engine.run_fault(fault);
            for (lane, pattern) in patterns.iter().enumerate() {
                let expected = reference::faulty_response(&c, &view, fault, pattern);
                let good = engine.good_response(lane);
                assert_eq!(effect.faulty_response(&good, lane), expected);
            }
        }
    }

    #[test]
    fn generated_circuit_matches_reference_sampled() {
        use sdd_logic::Prng;
        let c = generator::iscas89("s208", 1).unwrap();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let width = view.inputs().len();
        let mut rng = Prng::seed_from_u64(42);
        let patterns: Vec<BitVec> = (0..64)
            .map(|_| (0..width).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        let mut engine = Engine::new(&c, &view);
        engine.load_block(&PatternBlock::from_patterns(width, &patterns));
        // Sample every 7th fault to keep the scalar reference affordable.
        for (id, fault) in universe.iter() {
            if id.index() % 7 != 0 {
                continue;
            }
            let effect = engine.run_fault(fault);
            for lane in [0usize, 13, 63] {
                let expected = reference::faulty_response(&c, &view, fault, &patterns[lane]);
                let good = engine.good_response(lane);
                assert_eq!(
                    effect.faulty_response(&good, lane),
                    expected,
                    "{} lane {lane}",
                    fault.describe(&c)
                );
            }
        }
    }

    #[test]
    fn partial_block_masks_dead_lanes() {
        let c = c17();
        let view = CombView::new(&c);
        let mut engine = Engine::new(&c, &view);
        let patterns = all_patterns(5);
        engine.load_block(&PatternBlock::from_patterns(5, &patterns[..3]));
        let universe = FaultUniverse::enumerate(&c);
        for (_, fault) in universe.iter() {
            let effect = engine.run_fault(fault);
            assert_eq!(effect.detect & !0b111, 0, "dead lanes must stay silent");
        }
    }

    #[test]
    #[should_panic(expected = "no block loaded")]
    fn run_fault_without_block_panics() {
        let c = c17();
        let view = CombView::new(&c);
        let mut engine = Engine::new(&c, &view);
        let universe = FaultUniverse::enumerate(&c);
        engine.run_fault(universe.fault(sdd_fault::FaultId(0)));
    }

    #[test]
    #[should_panic(expected = "block width")]
    fn wrong_block_width_panics() {
        let c = c17();
        let view = CombView::new(&c);
        let mut engine = Engine::new(&c, &view);
        engine.load_block(&PatternBlock::from_patterns(4, &[]));
    }
}
