//! Property-based tests for the logic-value layer.

use proptest::prelude::*;
use sdd_logic::{BitVec, PatternBlock, V5};

fn arb_bitvec(max_len: usize) -> impl Strategy<Value = BitVec> {
    proptest::collection::vec(any::<bool>(), 0..max_len).prop_map(BitVec::from_iter)
}

fn arb_v5() -> impl Strategy<Value = V5> {
    prop_oneof![
        Just(V5::Zero),
        Just(V5::One),
        Just(V5::X),
        Just(V5::D),
        Just(V5::Db),
    ]
}

proptest! {
    #[test]
    fn display_parse_round_trip(v in arb_bitvec(300)) {
        let text = v.to_string();
        let back: BitVec = text.parse().unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn push_get_agree(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
        let v: BitVec = bits.iter().copied().collect();
        prop_assert_eq!(v.len(), bits.len());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(v.get(i), Some(b));
        }
        prop_assert_eq!(v.count_ones(), bits.iter().filter(|&&b| b).count());
    }

    #[test]
    fn hamming_is_a_metric(a in arb_bitvec(200), b in arb_bitvec(200), c in arb_bitvec(200)) {
        // Only comparable lengths matter; force equal lengths by truncation.
        let n = a.len().min(b.len()).min(c.len());
        let a: BitVec = a.iter().take(n).collect();
        let b: BitVec = b.iter().take(n).collect();
        let c: BitVec = c.iter().take(n).collect();
        let dab = a.hamming_distance(&b).unwrap();
        let dba = b.hamming_distance(&a).unwrap();
        prop_assert_eq!(dab, dba, "symmetry");
        prop_assert_eq!(a.hamming_distance(&a).unwrap(), 0, "identity");
        prop_assert_eq!(dab == 0, a == b, "separation");
        let dac = a.hamming_distance(&c).unwrap();
        let dcb = c.hamming_distance(&b).unwrap();
        prop_assert!(dab <= dac + dcb, "triangle inequality");
    }

    #[test]
    fn xor_popcount_is_hamming(a in arb_bitvec(200), b in arb_bitvec(200)) {
        let n = a.len().min(b.len());
        let a: BitVec = a.iter().take(n).collect();
        let b: BitVec = b.iter().take(n).collect();
        prop_assert_eq!((&a ^ &b).count_ones(), a.hamming_distance(&b).unwrap());
    }

    #[test]
    fn double_complement_is_identity(v in arb_bitvec(200)) {
        prop_assert_eq!(!&!&v, v);
    }

    #[test]
    fn toggle_is_involution(v in arb_bitvec(200), index in 0usize..200) {
        prop_assume!(index < v.len().max(1) && !v.is_empty());
        let index = index % v.len();
        let mut w = v.clone();
        w.toggle(index);
        prop_assert_ne!(&w, &v);
        w.toggle(index);
        prop_assert_eq!(w, v);
    }

    #[test]
    fn ordering_is_consistent_with_equality(a in arb_bitvec(100), b in arb_bitvec(100)) {
        prop_assert_eq!(a == b, a.cmp(&b) == std::cmp::Ordering::Equal);
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
    }

    #[test]
    fn block_transposition_round_trip(
        patterns in proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 5), 1..64
        )
    ) {
        let vecs: Vec<BitVec> = patterns.iter().map(|p| p.iter().copied().collect()).collect();
        let block = PatternBlock::from_patterns(5, &vecs);
        for (p, pattern) in patterns.iter().enumerate() {
            for (i, &bit) in pattern.iter().enumerate() {
                prop_assert_eq!(block.input_word(i) >> p & 1 == 1, bit);
            }
        }
        prop_assert_eq!(block.lane_mask().count_ones() as usize, patterns.len());
    }

    #[test]
    fn v5_de_morgan(a in arb_v5(), b in arb_v5()) {
        prop_assert_eq!(a.and(b).not(), a.not().or(b.not()));
        prop_assert_eq!(a.or(b).not(), a.not().and(b.not()));
    }

    #[test]
    fn v5_operations_sound_on_pairs(a in arb_v5(), b in arb_v5()) {
        // Whenever the result is fully determined, it must agree with the
        // boolean operation applied to each machine separately, for every
        // completion of unknown operands.
        for (ga, fa) in completions(a) {
            for (gb, fb) in completions(b) {
                let and = a.and(b);
                if let (Some(g), Some(f)) = (and.good(), and.faulty()) {
                    prop_assert_eq!(g, ga && gb);
                    prop_assert_eq!(f, fa && fb);
                }
                let xor = a.xor(b);
                if let (Some(g), Some(f)) = (xor.good(), xor.faulty()) {
                    prop_assert_eq!(g, ga ^ gb);
                    prop_assert_eq!(f, fa ^ fb);
                }
            }
        }
    }
}

/// All concrete (good, faulty) pairs a composite value may stand for.
fn completions(v: V5) -> Vec<(bool, bool)> {
    match (v.good(), v.faulty()) {
        (Some(g), Some(f)) => vec![(g, f)],
        _ => vec![(false, false), (false, true), (true, false), (true, true)],
    }
}
