//! Property-style tests for the logic-value layer, driven by the in-tree
//! seeded [`Prng`] so they run with no registry access.

use sdd_logic::{BitVec, MaskedBitVec, PatternBlock, Prng, V5};

const CASES: usize = 64;

fn random_bitvec(rng: &mut Prng, max_len: usize) -> BitVec {
    let len = rng.gen_range(0..max_len);
    (0..len).map(|_| rng.gen_bool(0.5)).collect()
}

fn random_v5(rng: &mut Prng) -> V5 {
    *rng.choose(&[V5::Zero, V5::One, V5::X, V5::D, V5::Db])
        .unwrap()
}

#[test]
fn display_parse_round_trip() {
    let mut rng = Prng::seed_from_u64(0x10);
    for _ in 0..CASES {
        let v = random_bitvec(&mut rng, 300);
        let back: BitVec = v.to_string().parse().unwrap();
        assert_eq!(back, v);
    }
}

#[test]
fn push_get_agree() {
    let mut rng = Prng::seed_from_u64(0x11);
    for _ in 0..CASES {
        let bits: Vec<bool> = (0..rng.gen_range(0..300))
            .map(|_| rng.gen_bool(0.5))
            .collect();
        let v: BitVec = bits.iter().copied().collect();
        assert_eq!(v.len(), bits.len());
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(v.get(i), Some(b));
        }
        assert_eq!(v.count_ones(), bits.iter().filter(|&&b| b).count());
    }
}

#[test]
fn hamming_is_a_metric() {
    let mut rng = Prng::seed_from_u64(0x12);
    for _ in 0..CASES {
        let a = random_bitvec(&mut rng, 200);
        let b = random_bitvec(&mut rng, 200);
        let c = random_bitvec(&mut rng, 200);
        let n = a.len().min(b.len()).min(c.len());
        let a: BitVec = a.iter().take(n).collect();
        let b: BitVec = b.iter().take(n).collect();
        let c: BitVec = c.iter().take(n).collect();
        let dab = a.hamming_distance(&b).unwrap();
        let dba = b.hamming_distance(&a).unwrap();
        assert_eq!(dab, dba, "symmetry");
        assert_eq!(a.hamming_distance(&a).unwrap(), 0, "identity");
        assert_eq!(dab == 0, a == b, "separation");
        let dac = a.hamming_distance(&c).unwrap();
        let dcb = c.hamming_distance(&b).unwrap();
        assert!(dab <= dac + dcb, "triangle inequality");
    }
}

#[test]
fn xor_popcount_is_hamming() {
    let mut rng = Prng::seed_from_u64(0x13);
    for _ in 0..CASES {
        let a = random_bitvec(&mut rng, 200);
        let b = random_bitvec(&mut rng, 200);
        let n = a.len().min(b.len());
        let a: BitVec = a.iter().take(n).collect();
        let b: BitVec = b.iter().take(n).collect();
        assert_eq!((&a ^ &b).count_ones(), a.hamming_distance(&b).unwrap());
    }
}

#[test]
fn double_complement_is_identity() {
    let mut rng = Prng::seed_from_u64(0x14);
    for _ in 0..CASES {
        let v = random_bitvec(&mut rng, 200);
        assert_eq!(!&!&v, v);
    }
}

#[test]
fn toggle_is_involution() {
    let mut rng = Prng::seed_from_u64(0x15);
    for _ in 0..CASES {
        let v = random_bitvec(&mut rng, 200);
        if v.is_empty() {
            continue;
        }
        let index = rng.gen_range(0..v.len());
        let mut w = v.clone();
        w.toggle(index);
        assert_ne!(w, v);
        w.toggle(index);
        assert_eq!(w, v);
    }
}

#[test]
fn ordering_is_consistent_with_equality() {
    let mut rng = Prng::seed_from_u64(0x16);
    for _ in 0..CASES {
        let a = random_bitvec(&mut rng, 100);
        let b = random_bitvec(&mut rng, 100);
        assert_eq!(a == b, a.cmp(&b) == std::cmp::Ordering::Equal);
        assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
    }
}

#[test]
fn block_transposition_round_trip() {
    let mut rng = Prng::seed_from_u64(0x17);
    for _ in 0..CASES {
        let count = rng.gen_range(1..64);
        let patterns: Vec<Vec<bool>> = (0..count)
            .map(|_| (0..5).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        let vecs: Vec<BitVec> = patterns
            .iter()
            .map(|p| p.iter().copied().collect())
            .collect();
        let block = PatternBlock::from_patterns(5, &vecs);
        for (p, pattern) in patterns.iter().enumerate() {
            for (i, &bit) in pattern.iter().enumerate() {
                assert_eq!(block.input_word(i) >> p & 1 == 1, bit);
            }
        }
        assert_eq!(block.lane_mask().count_ones() as usize, patterns.len());
    }
}

#[test]
fn v5_de_morgan() {
    let mut rng = Prng::seed_from_u64(0x18);
    for _ in 0..CASES {
        let a = random_v5(&mut rng);
        let b = random_v5(&mut rng);
        assert_eq!(a.and(b).not(), a.not().or(b.not()));
        assert_eq!(a.or(b).not(), a.not().and(b.not()));
    }
}

#[test]
fn v5_operations_sound_on_pairs() {
    let mut rng = Prng::seed_from_u64(0x19);
    for _ in 0..CASES {
        let a = random_v5(&mut rng);
        let b = random_v5(&mut rng);
        // Whenever the result is fully determined, it must agree with the
        // boolean operation applied to each machine separately, for every
        // completion of unknown operands.
        for (ga, fa) in completions(a) {
            for (gb, fb) in completions(b) {
                let and = a.and(b);
                if let (Some(g), Some(f)) = (and.good(), and.faulty()) {
                    assert_eq!(g, ga && gb);
                    assert_eq!(f, fa && fb);
                }
                let xor = a.xor(b);
                if let (Some(g), Some(f)) = (xor.good(), xor.faulty()) {
                    assert_eq!(g, ga ^ gb);
                    assert_eq!(f, fa ^ fb);
                }
            }
        }
    }
}

#[test]
fn masked_distance_agrees_with_hamming_when_fully_known() {
    let mut rng = Prng::seed_from_u64(0x1A);
    for _ in 0..CASES {
        let a = random_bitvec(&mut rng, 150);
        let b: BitVec = (0..a.len()).map(|_| rng.gen_bool(0.5)).collect();
        let m = MaskedBitVec::from_known(a.clone());
        let d = m.distance_to(&b).unwrap();
        assert_eq!(Some(d.mismatches), a.hamming_distance(&b));
        assert_eq!(d.known, a.len());
    }
}

#[test]
fn masking_bits_never_increases_masked_distance() {
    let mut rng = Prng::seed_from_u64(0x1B);
    for _ in 0..CASES {
        let a = random_bitvec(&mut rng, 150);
        let b: BitVec = (0..a.len()).map(|_| rng.gen_bool(0.5)).collect();
        let mut m = MaskedBitVec::from_known(a);
        let mut last = m.distance_to(&b).unwrap().mismatches;
        for i in 0..m.len() {
            if rng.gen_bool(0.3) {
                m.mask(i);
                let d = m.distance_to(&b).unwrap().mismatches;
                assert!(d <= last, "masking cannot add mismatches");
                last = d;
            }
        }
    }
}

/// All concrete (good, faulty) pairs a composite value may stand for.
fn completions(v: V5) -> Vec<(bool, bool)> {
    match (v.good(), v.faulty()) {
        (Some(g), Some(f)) => vec![(g, f)],
        _ => vec![(false, false), (false, true), (true, false), (true, true)],
    }
}
