//! Bit-packed logic values and vectors for gate-level simulation.
//!
//! This crate is the lowest layer of the `same-different` workspace. It knows
//! nothing about circuits or faults; it only provides the value types that the
//! simulator ([`sdd-sim`]) and the test generator ([`sdd-atpg`]) compute with:
//!
//! * [`BitVec`] — a growable, packed vector of two-valued logic, used for
//!   input patterns and output responses. Output responses are the currency
//!   of fault dictionaries: a dictionary entry is ultimately a statement about
//!   whether two [`BitVec`]s are equal.
//! * [`PatternBlock`] — a block of up to 64 patterns transposed into one
//!   machine word per signal, the representation behind parallel-pattern
//!   fault simulation (PPSFP).
//! * [`V5`] — the five-valued D-algebra `{0, 1, X, D, D'}` of Roth, used by
//!   the PODEM test generator to reason about a fault-free and a faulty
//!   machine at once.
//!
//! # Example
//!
//! ```
//! use sdd_logic::BitVec;
//!
//! let fault_free: BitVec = "01".parse()?;
//! let faulty: BitVec = "11".parse()?;
//! // A pass/fail dictionary bit is exactly this comparison:
//! assert_ne!(fault_free, faulty);
//! assert_eq!(fault_free.hamming_distance(&faulty), Some(1));
//! # Ok::<(), sdd_logic::ParseBitVecError>(())
//! ```
//!
//! [`sdd-sim`]: https://example.invalid/same-different
//! [`sdd-atpg`]: https://example.invalid/same-different

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitvec;
mod block;
mod error;
mod fivev;
mod masked;
mod rng;

pub use bitvec::{BitVec, Iter, ParseBitVecError};
pub use block::{PatternBlock, LANES};
pub use error::SddError;
pub use fivev::V5;
pub use masked::{MaskedBitVec, MaskedDistance};
pub use rng::{Prng, SampleRange};
