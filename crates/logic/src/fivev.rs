//! Roth's five-valued D-algebra for deterministic test generation.

use std::fmt;

/// A composite logic value describing a signal in the fault-free and the
/// faulty machine at once.
///
/// PODEM reasons about both machines simultaneously: `D` means the signal is
/// `1` in the fault-free circuit and `0` in the faulty one, `Db` (D-bar) the
/// reverse. A test for a fault exists when a `D`/`Db` reaches an observed
/// output.
///
/// # Example
///
/// ```
/// use sdd_logic::V5;
///
/// // Propagating a fault effect through an AND gate requires the side
/// // input at its non-controlling value:
/// assert_eq!(V5::D.and(V5::One), V5::D);
/// assert_eq!(V5::D.and(V5::Zero), V5::Zero);
/// assert_eq!(V5::D.and(V5::X), V5::X);
/// // A fault effect meeting its own complement cancels out:
/// assert_eq!(V5::D.and(V5::Db), V5::Zero);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum V5 {
    /// Logic `0` in both machines.
    Zero,
    /// Logic `1` in both machines.
    One,
    /// Unassigned / unknown in at least one machine.
    #[default]
    X,
    /// `1` fault-free, `0` faulty.
    D,
    /// `0` fault-free, `1` faulty (D-bar).
    Db,
}

impl V5 {
    /// Value in the fault-free machine, or `None` when unknown.
    pub fn good(self) -> Option<bool> {
        match self {
            V5::Zero | V5::Db => Some(false),
            V5::One | V5::D => Some(true),
            V5::X => None,
        }
    }

    /// Value in the faulty machine, or `None` when unknown.
    pub fn faulty(self) -> Option<bool> {
        match self {
            V5::Zero | V5::D => Some(false),
            V5::One | V5::Db => Some(true),
            V5::X => None,
        }
    }

    /// Combines known good/faulty values into a composite value.
    pub fn from_pair(good: bool, faulty: bool) -> Self {
        match (good, faulty) {
            (false, false) => V5::Zero,
            (true, true) => V5::One,
            (true, false) => V5::D,
            (false, true) => V5::Db,
        }
    }

    /// Lifts a binary value into the algebra.
    pub fn from_bool(bit: bool) -> Self {
        if bit {
            V5::One
        } else {
            V5::Zero
        }
    }

    /// Returns `true` for `D` or `Db` — a live fault effect.
    pub fn is_fault_effect(self) -> bool {
        matches!(self, V5::D | V5::Db)
    }

    /// Returns `true` when the value is fully assigned (not `X`).
    pub fn is_assigned(self) -> bool {
        self != V5::X
    }

    /// Five-valued NOT (also available as the `!` operator).
    #[allow(clippy::should_implement_trait)] // `std::ops::Not` is implemented too
    pub fn not(self) -> Self {
        match self {
            V5::Zero => V5::One,
            V5::One => V5::Zero,
            V5::X => V5::X,
            V5::D => V5::Db,
            V5::Db => V5::D,
        }
    }

    /// Five-valued AND. Exact on the pair semantics: the result's good
    /// (faulty) value is the AND of the operands' good (faulty) values,
    /// with `X` when either side of the pair is unknown and the other is
    /// not the controlling `0`.
    pub fn and(self, rhs: Self) -> Self {
        Self::lift2(self, rhs, |a, b| a && b, false)
    }

    /// Five-valued OR (controlling value `1`).
    pub fn or(self, rhs: Self) -> Self {
        Self::lift2(self, rhs, |a, b| a || b, true)
    }

    /// Five-valued XOR. Any `X` operand yields `X` (XOR has no controlling
    /// value).
    pub fn xor(self, rhs: Self) -> Self {
        match (self.good(), self.faulty(), rhs.good(), rhs.faulty()) {
            (Some(g1), Some(f1), Some(g2), Some(f2)) => Self::from_pair(g1 ^ g2, f1 ^ f2),
            _ => V5::X,
        }
    }

    /// Applies a monotone two-input function with controlling output value
    /// `ctrl_out` (the value produced whenever a controlling input is
    /// present) to both machines independently.
    fn lift2(a: Self, b: Self, f: fn(bool, bool) -> bool, controlling: bool) -> Self {
        let good = Self::lift_one(a.good(), b.good(), f, controlling);
        let faulty = Self::lift_one(a.faulty(), b.faulty(), f, controlling);
        match (good, faulty) {
            (Some(g), Some(fy)) => Self::from_pair(g, fy),
            _ => V5::X,
        }
    }

    fn lift_one(
        a: Option<bool>,
        b: Option<bool>,
        f: fn(bool, bool) -> bool,
        controlling: bool,
    ) -> Option<bool> {
        match (a, b) {
            (Some(x), Some(y)) => Some(f(x, y)),
            // One side unknown: result known only if the other side controls.
            (Some(x), None) | (None, Some(x)) if x == controlling => Some(f(x, x)),
            _ => None,
        }
    }
}

impl std::ops::Not for V5 {
    type Output = V5;

    /// Five-valued NOT: `!V5::D == V5::Db`.
    fn not(self) -> V5 {
        V5::not(self)
    }
}

impl fmt::Display for V5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            V5::Zero => "0",
            V5::One => "1",
            V5::X => "X",
            V5::D => "D",
            V5::Db => "D'",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [V5; 5] = [V5::Zero, V5::One, V5::X, V5::D, V5::Db];

    #[test]
    fn pair_round_trip() {
        for g in [false, true] {
            for f in [false, true] {
                let v = V5::from_pair(g, f);
                assert_eq!(v.good(), Some(g));
                assert_eq!(v.faulty(), Some(f));
            }
        }
        assert_eq!(V5::X.good(), None);
        assert_eq!(V5::X.faulty(), None);
    }

    #[test]
    fn not_is_involution() {
        for v in ALL {
            assert_eq!(v.not().not(), v);
        }
        assert_eq!(V5::D.not(), V5::Db);
    }

    #[test]
    fn and_or_agree_with_pair_semantics() {
        // Exhaustive check against the defining pair semantics: each machine
        // component is computed independently; the five-valued result can
        // only encode the pair when BOTH components are determined,
        // otherwise it must be X.
        for a in ALL {
            for b in ALL {
                check_pair(a, b, a.and(b), |x, y| x && y, false);
                check_pair(a, b, a.or(b), |x, y| x || y, true);
            }
        }
    }

    fn check_pair(a: V5, b: V5, out: V5, f: fn(bool, bool) -> bool, controlling: bool) {
        let good = component(a.good(), b.good(), f, controlling);
        let faulty = component(a.faulty(), b.faulty(), f, controlling);
        let expected = match (good, faulty) {
            (Some(g), Some(fy)) => V5::from_pair(g, fy),
            _ => V5::X,
        };
        assert_eq!(out, expected, "{a} op {b}");
    }

    fn component(
        a: Option<bool>,
        b: Option<bool>,
        f: fn(bool, bool) -> bool,
        controlling: bool,
    ) -> Option<bool> {
        match (a, b) {
            (Some(x), Some(y)) => Some(f(x, y)),
            (Some(x), None) | (None, Some(x)) if x == controlling => Some(f(x, x)),
            _ => None,
        }
    }

    #[test]
    fn d_cancellation() {
        assert_eq!(V5::D.and(V5::Db), V5::Zero);
        assert_eq!(V5::D.or(V5::Db), V5::One);
        assert_eq!(V5::D.xor(V5::D), V5::Zero);
        assert_eq!(V5::D.xor(V5::Db), V5::One);
    }

    #[test]
    fn xor_with_x_is_x() {
        for v in ALL {
            assert_eq!(v.xor(V5::X), V5::X);
            assert_eq!(V5::X.xor(v), V5::X);
        }
    }

    #[test]
    fn xor_propagates_fault_effects() {
        assert_eq!(V5::D.xor(V5::Zero), V5::D);
        assert_eq!(V5::D.xor(V5::One), V5::Db);
    }

    #[test]
    fn and_or_commutative() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b), b.and(a));
                assert_eq!(a.or(b), b.or(a));
                assert_eq!(a.xor(b), b.xor(a));
            }
        }
    }

    #[test]
    fn controlling_values_dominate_x() {
        assert_eq!(V5::Zero.and(V5::X), V5::Zero);
        assert_eq!(V5::One.or(V5::X), V5::One);
        assert_eq!(V5::One.and(V5::X), V5::X);
        assert_eq!(V5::Zero.or(V5::X), V5::X);
    }

    #[test]
    fn display_matches_literature() {
        let rendered: Vec<String> = ALL.iter().map(|v| v.to_string()).collect();
        assert_eq!(rendered, ["0", "1", "X", "D", "D'"]);
    }

    #[test]
    fn fault_effect_predicate() {
        assert!(V5::D.is_fault_effect());
        assert!(V5::Db.is_fault_effect());
        assert!(!V5::X.is_fault_effect());
        assert!(!V5::One.is_fault_effect());
        assert!(V5::One.is_assigned());
        assert!(!V5::X.is_assigned());
    }
}
