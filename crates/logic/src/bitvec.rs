//! A packed, growable vector of two-valued logic.

use std::error::Error;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{BitAnd, BitOr, BitXor, Not};
use std::str::FromStr;

/// A packed vector of bits with value semantics.
///
/// `BitVec` stores logic values 64 per machine word. It is used throughout the
/// workspace for input patterns (one bit per primary input) and output
/// responses (one bit per observed output). Equality, hashing and Hamming
/// distance are the operations fault dictionaries are built from, so they are
/// all O(words) and allocation-free.
///
/// Bit `0` is the first bit pushed; string formatting prints bit `0` first,
/// so `"01"` parses to a vector whose bit 0 is `0` and bit 1 is `1` — the
/// same left-to-right order the paper uses for output vectors like `z = 01`.
///
/// # Example
///
/// ```
/// use sdd_logic::BitVec;
///
/// let mut v = BitVec::new();
/// v.push(false);
/// v.push(true);
/// assert_eq!(v.to_string(), "01");
/// assert_eq!(v, "01".parse()?);
/// # Ok::<(), sdd_logic::ParseBitVecError>(())
/// ```
#[derive(Clone, Default, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a vector of `len` bits, all `false`.
    ///
    /// # Example
    ///
    /// ```
    /// let v = sdd_logic::BitVec::zeros(70);
    /// assert_eq!(v.len(), 70);
    /// assert_eq!(v.count_ones(), 0);
    /// ```
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a vector with capacity for `len` bits without allocating per push.
    pub fn with_capacity(len: usize) -> Self {
        Self {
            words: Vec::with_capacity(len.div_ceil(64)),
            len: 0,
        }
    }

    /// Number of bits in the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Returns the bit at `index`, or `None` when out of bounds.
    pub fn get(&self, index: usize) -> Option<bool> {
        (index < self.len).then(|| self.words[index / 64] >> (index % 64) & 1 == 1)
    }

    /// Returns the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn bit(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        self.words[index / 64] >> (index % 64) & 1 == 1
    }

    /// Sets the bit at `index` to `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn set(&mut self, index: usize, bit: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let mask = 1 << (index % 64);
        if bit {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// Flips the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn toggle(&mut self, index: usize) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        self.words[index / 64] ^= 1 << (index % 64);
    }

    /// Number of `true` bits.
    pub fn count_ones(&self) -> usize {
        self.masked_words().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if any bit is set.
    pub fn any(&self) -> bool {
        self.masked_words().any(|w| w != 0)
    }

    /// Number of positions at which `self` and `other` differ, or `None`
    /// when the lengths differ (vectors over different output sets are
    /// incomparable rather than maximally distant).
    ///
    /// # Example
    ///
    /// ```
    /// use sdd_logic::BitVec;
    /// let a: BitVec = "0110".parse()?;
    /// let b: BitVec = "0011".parse()?;
    /// assert_eq!(a.hamming_distance(&b), Some(2));
    /// # Ok::<(), sdd_logic::ParseBitVecError>(())
    /// ```
    pub fn hamming_distance(&self, other: &Self) -> Option<usize> {
        (self.len == other.len).then(|| {
            self.masked_words()
                .zip(other.masked_words())
                .map(|(a, b)| (a ^ b).count_ones() as usize)
                .sum()
        })
    }

    /// Iterates over the bits in index order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            vec: self,
            index: 0,
        }
    }

    /// Number of 64-bit storage words (`len().div_ceil(64)`).
    pub fn word_count(&self) -> usize {
        self.len.div_ceil(64)
    }

    /// Iterates over the packed storage words, least-significant bit first,
    /// with bits beyond `len` forced to zero — the canonical little-endian
    /// word image used by the binary dictionary store.
    ///
    /// # Example
    ///
    /// ```
    /// use sdd_logic::BitVec;
    /// let v: BitVec = "101".parse()?;
    /// assert_eq!(v.as_words().collect::<Vec<u64>>(), vec![0b101]);
    /// # Ok::<(), sdd_logic::ParseBitVecError>(())
    /// ```
    pub fn as_words(&self) -> impl Iterator<Item = u64> + '_ {
        self.masked_words()
    }

    /// Reassembles a vector of `len` bits from its packed word image, as
    /// produced by [`as_words`](Self::as_words). The inverse of `as_words`:
    /// stale bits beyond `len` in the last word are cleared rather than
    /// trusted, so any 8-byte-aligned payload slice deserializes safely.
    ///
    /// # Errors
    ///
    /// Returns [`SddError::CountMismatch`] when `words.len()` differs from
    /// `len.div_ceil(64)`.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Result<Self, crate::SddError> {
        if words.len() != len.div_ceil(64) {
            return Err(crate::SddError::CountMismatch {
                context: "bit vector storage words",
                expected: len.div_ceil(64),
                actual: words.len(),
            });
        }
        let tail_bits = len % 64;
        if tail_bits != 0 {
            if let Some(last) = words.last_mut() {
                *last &= u64::MAX >> (64 - tail_bits);
            }
        }
        Ok(Self { words, len })
    }

    /// Words with bits beyond `len` forced to zero, so that equality and
    /// hashing ignore stale storage.
    fn masked_words(&self) -> impl Iterator<Item = u64> + '_ {
        let full = self.len / 64;
        let tail_bits = self.len % 64;
        self.words.iter().enumerate().map(move |(i, &w)| {
            if i < full {
                w
            } else if tail_bits == 0 {
                0
            } else {
                w & (u64::MAX >> (64 - tail_bits))
            }
        })
    }
}

impl PartialEq for BitVec {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.masked_words().eq(other.masked_words())
    }
}

impl Hash for BitVec {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.len.hash(state);
        for w in self.masked_words() {
            w.hash(state);
        }
    }
}

impl PartialOrd for BitVec {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BitVec {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.len
            .cmp(&other.len)
            .then_with(|| self.masked_words().cmp(other.masked_words()))
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec(\"{self}\")")
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for bit in self.iter() {
            f.write_str(if bit { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut v = Self::new();
        v.extend(iter);
        v
    }
}

impl Extend<bool> for BitVec {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for bit in iter {
            self.push(bit);
        }
    }
}

impl From<&[bool]> for BitVec {
    fn from(bits: &[bool]) -> Self {
        bits.iter().copied().collect()
    }
}

impl<const N: usize> From<[bool; N]> for BitVec {
    fn from(bits: [bool; N]) -> Self {
        bits.into_iter().collect()
    }
}

/// Error returned when parsing a [`BitVec`] from a string containing a
/// character other than `0` or `1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBitVecError {
    offending: char,
    position: usize,
}

impl fmt::Display for ParseBitVecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid bit character {:?} at position {}",
            self.offending, self.position
        )
    }
}

impl Error for ParseBitVecError {}

impl FromStr for BitVec {
    type Err = ParseBitVecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.chars()
            .enumerate()
            .map(|(position, c)| match c {
                '0' => Ok(false),
                '1' => Ok(true),
                offending => Err(ParseBitVecError {
                    offending,
                    position,
                }),
            })
            .collect()
    }
}

macro_rules! bitwise_op {
    ($trait:ident, $method:ident, $op:tt, $doc:literal) => {
        impl $trait for &BitVec {
            type Output = BitVec;

            #[doc = $doc]
            ///
            /// # Panics
            ///
            /// Panics if the operand lengths differ.
            fn $method(self, rhs: &BitVec) -> BitVec {
                assert_eq!(self.len, rhs.len, "bitwise op on unequal lengths");
                BitVec {
                    words: self
                        .words
                        .iter()
                        .zip(&rhs.words)
                        .map(|(a, b)| a $op b)
                        .collect(),
                    len: self.len,
                }
            }
        }
    };
}

bitwise_op!(BitAnd, bitand, &, "Bitwise AND of two equal-length vectors.");
bitwise_op!(BitOr, bitor, |, "Bitwise OR of two equal-length vectors.");
bitwise_op!(BitXor, bitxor, ^, "Bitwise XOR of two equal-length vectors (the error map between two responses).");

impl Not for &BitVec {
    type Output = BitVec;

    /// Bitwise complement (bits beyond `len` stay unobservable).
    fn not(self) -> BitVec {
        BitVec {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        }
    }
}

/// Iterator over the bits of a [`BitVec`], produced by [`BitVec::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    vec: &'a BitVec,
    index: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        let bit = self.vec.get(self.index)?;
        self.index += 1;
        Some(bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.vec.len - self.index;
        (rest, Some(rest))
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl<'a> IntoIterator for &'a BitVec {
    type Item = bool;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &BitVec) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn push_and_get_round_trip() {
        let mut v = BitVec::new();
        let pattern: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        for &b in &pattern {
            v.push(b);
        }
        assert_eq!(v.len(), 200);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(v.bit(i), b, "bit {i}");
        }
        assert_eq!(v.get(200), None);
    }

    #[test]
    fn zeros_is_all_false() {
        let v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        assert!(!v.any());
        assert!(v.iter().all(|b| !b));
    }

    #[test]
    fn set_and_toggle() {
        let mut v = BitVec::zeros(65);
        v.set(64, true);
        assert!(v.bit(64));
        v.toggle(64);
        assert!(!v.bit(64));
        v.toggle(0);
        assert!(v.bit(0));
        assert_eq!(v.count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        BitVec::zeros(3).bit(3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        BitVec::zeros(3).set(3, true);
    }

    #[test]
    fn parse_and_display_round_trip() {
        let s = "0110100111010";
        let v: BitVec = s.parse().unwrap();
        assert_eq!(v.to_string(), s);
    }

    #[test]
    fn parse_rejects_non_bits() {
        let err = "01x".parse::<BitVec>().unwrap_err();
        assert_eq!(err.position, 2);
        assert_eq!(err.offending, 'x');
        assert!(err.to_string().contains("position 2"));
    }

    #[test]
    fn equality_ignores_stale_storage_bits() {
        // Build "1" two ways: directly, and by clearing a longer vector's tail.
        let a: BitVec = "1".parse().unwrap();
        let mut b: BitVec = "11".parse().unwrap();
        // Shrink b by rebuilding from one bit; storage may differ internally.
        b = b.iter().take(1).collect();
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn not_then_equality_is_consistent() {
        let a: BitVec = "101".parse().unwrap();
        let na = !&a;
        assert_eq!(na.to_string(), "010");
        // Complement twice round-trips even though stale high bits flip.
        assert_eq!(!&na, a);
    }

    #[test]
    fn hamming_distance_basics() {
        let a: BitVec = "0000".parse().unwrap();
        let b: BitVec = "1010".parse().unwrap();
        assert_eq!(a.hamming_distance(&b), Some(2));
        assert_eq!(a.hamming_distance(&a), Some(0));
        let c: BitVec = "000".parse().unwrap();
        assert_eq!(a.hamming_distance(&c), None);
    }

    #[test]
    fn xor_is_error_map() {
        let good: BitVec = "0101".parse().unwrap();
        let bad: BitVec = "0111".parse().unwrap();
        let err = &good ^ &bad;
        assert_eq!(err.to_string(), "0010");
        assert_eq!(err.count_ones(), 1);
    }

    #[test]
    fn and_or_behave_bitwise() {
        let a: BitVec = "0011".parse().unwrap();
        let b: BitVec = "0101".parse().unwrap();
        assert_eq!((&a & &b).to_string(), "0001");
        assert_eq!((&a | &b).to_string(), "0111");
    }

    #[test]
    #[should_panic(expected = "unequal lengths")]
    fn xor_unequal_lengths_panics() {
        let a: BitVec = "01".parse().unwrap();
        let b: BitVec = "011".parse().unwrap();
        let _ = &a ^ &b;
    }

    #[test]
    fn ordering_is_total_and_length_first() {
        let short: BitVec = "1".parse().unwrap();
        let long: BitVec = "00".parse().unwrap();
        assert!(short < long, "shorter sorts first regardless of content");
        let a: BitVec = "01".parse().unwrap();
        let b: BitVec = "10".parse().unwrap();
        assert_ne!(a.cmp(&b), std::cmp::Ordering::Equal);
    }

    #[test]
    fn from_iterator_and_extend() {
        let v: BitVec = [true, false, true].into_iter().collect();
        assert_eq!(v.to_string(), "101");
        let mut w = v.clone();
        w.extend([false, false]);
        assert_eq!(w.to_string(), "10100");
    }

    #[test]
    fn from_array_and_slice() {
        let v = BitVec::from([true, false]);
        assert_eq!(v.to_string(), "10");
        let s = [false, true];
        assert_eq!(BitVec::from(&s[..]).to_string(), "01");
    }

    #[test]
    fn exact_size_iterator() {
        let v: BitVec = "10110".parse().unwrap();
        let mut it = v.iter();
        assert_eq!(it.len(), 5);
        it.next();
        assert_eq!(it.len(), 4);
        assert_eq!((&v).into_iter().count(), 5);
    }

    #[test]
    fn count_ones_across_word_boundary() {
        let mut v = BitVec::zeros(128);
        v.set(0, true);
        v.set(63, true);
        v.set(64, true);
        v.set(127, true);
        assert_eq!(v.count_ones(), 4);
    }

    #[test]
    fn debug_is_nonempty() {
        let v: BitVec = "01".parse().unwrap();
        assert_eq!(format!("{v:?}"), "BitVec(\"01\")");
    }

    #[test]
    fn words_round_trip_across_boundaries() {
        for len in [0usize, 1, 63, 64, 65, 128, 130] {
            let v: BitVec = (0..len).map(|i| i % 3 == 0).collect();
            assert_eq!(v.word_count(), len.div_ceil(64));
            let words: Vec<u64> = v.as_words().collect();
            assert_eq!(words.len(), v.word_count());
            let back = BitVec::from_words(words, len).unwrap();
            assert_eq!(back, v, "len {len}");
        }
    }

    #[test]
    fn from_words_clears_stale_tail_bits() {
        // A word with garbage above bit 2 must still equal "101".
        let v = BitVec::from_words(vec![0b101 | (0xFF << 3)], 3).unwrap();
        assert_eq!(v, "101".parse().unwrap());
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn from_words_rejects_wrong_word_count() {
        assert!(BitVec::from_words(vec![0, 0], 64).is_err());
        assert!(BitVec::from_words(vec![], 1).is_err());
    }
}
