//! The workspace-wide error type.
//!
//! Production diagnosis pipelines feed this workspace data from outside the
//! program: `.bench` netlists, serialized dictionaries, tester datalogs.
//! Malformed or mismatched input must surface as an error with context — not
//! an abort — so every fallible boundary converges on [`SddError`]. Crates
//! higher in the stack define `From` impls turning their local error types
//! (`NetlistError`, `ParseDictionaryError`, …) into `SddError`, letting a
//! whole pipeline run under one `Result` type.

use std::error::Error;
use std::fmt;

use crate::ParseBitVecError;

/// An error anywhere in the same/different diagnosis pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SddError {
    /// Two vectors that must be comparable have different widths.
    WidthMismatch {
        /// What was being compared (e.g. `"observed signature"`).
        context: &'static str,
        /// The width required.
        expected: usize,
        /// The width received.
        actual: usize,
    },
    /// A collection has the wrong number of elements.
    CountMismatch {
        /// What was being counted (e.g. `"responses per test"`).
        context: &'static str,
        /// The count required.
        expected: usize,
        /// The count received.
        actual: usize,
    },
    /// Text input failed to parse.
    Parse {
        /// 1-based line number, or 0 when no line applies.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Structurally invalid input that is not a per-line parse failure.
    Invalid {
        /// What went wrong.
        message: String,
    },
    /// There is nothing to match against (e.g. an empty dictionary).
    Empty {
        /// What was empty.
        context: &'static str,
    },
    /// Binary input ended before a complete record could be read.
    Truncated {
        /// What was being read (e.g. `"store header"`).
        context: &'static str,
        /// Bytes required.
        expected: usize,
        /// Bytes available.
        actual: usize,
    },
    /// A serialized artifact carries a format version this build cannot read.
    UnsupportedVersion {
        /// The version found in the input.
        found: u16,
        /// The newest version this build supports.
        supported: u16,
    },
    /// Stored and recomputed checksums disagree: the payload is corrupt.
    ChecksumMismatch {
        /// What was being verified (e.g. `"store payload"`).
        context: &'static str,
        /// The checksum recorded in the input.
        stored: u64,
        /// The checksum computed over the bytes actually read.
        computed: u64,
    },
    /// An operating-system I/O failure, carried as text so the error type
    /// stays `Clone + PartialEq`.
    Io {
        /// The failing path or endpoint.
        context: String,
        /// The OS error message.
        message: String,
    },
    /// A value does not fit in the fixed-width field the serialized format
    /// gives it — writing it would silently truncate.
    TooLarge {
        /// What was being written (e.g. `"class count"`).
        context: &'static str,
        /// The largest value the field can carry.
        max: u64,
        /// The value that did not fit.
        actual: u64,
    },
}

impl SddError {
    /// Convenience constructor for [`SddError::Invalid`].
    pub fn invalid(message: impl Into<String>) -> Self {
        SddError::Invalid {
            message: message.into(),
        }
    }

    /// Wraps a [`std::io::Error`] with the path or endpoint it came from.
    pub fn io(context: impl Into<String>, error: &std::io::Error) -> Self {
        SddError::Io {
            context: context.into(),
            message: error.to_string(),
        }
    }
}

impl fmt::Display for SddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SddError::WidthMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "{context}: width {actual} does not match expected {expected}"
            ),
            SddError::CountMismatch {
                context,
                expected,
                actual,
            } => write!(f, "{context}: got {actual}, expected {expected}"),
            SddError::Parse { line: 0, message } => write!(f, "parse error: {message}"),
            SddError::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
            SddError::Invalid { message } => write!(f, "invalid input: {message}"),
            SddError::Empty { context } => write!(f, "{context} is empty"),
            SddError::Truncated {
                context,
                expected,
                actual,
            } => write!(
                f,
                "{context} truncated: need {expected} bytes, have {actual}"
            ),
            SddError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported format version {found} (this build reads up to {supported})"
            ),
            SddError::ChecksumMismatch {
                context,
                stored,
                computed,
            } => write!(
                f,
                "{context} checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SddError::Io { context, message } => write!(f, "{context}: {message}"),
            SddError::TooLarge {
                context,
                max,
                actual,
            } => write!(
                f,
                "{context} {actual} exceeds the format's maximum of {max}"
            ),
        }
    }
}

impl Error for SddError {}

impl From<ParseBitVecError> for SddError {
    fn from(e: ParseBitVecError) -> Self {
        SddError::Parse {
            line: 0,
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitVec;

    #[test]
    fn display_formats_include_context() {
        let e = SddError::WidthMismatch {
            context: "observed signature",
            expected: 4,
            actual: 3,
        };
        assert!(e.to_string().contains("observed signature"));
        assert!(e.to_string().contains('4'));
        let e = SddError::Parse {
            line: 7,
            message: "bad magic".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let e = SddError::Parse {
            line: 0,
            message: "bad bit".into(),
        };
        assert!(!e.to_string().contains("line"));
        assert!(SddError::Empty {
            context: "dictionary"
        }
        .to_string()
        .contains("empty"));
    }

    #[test]
    fn store_variants_format_their_evidence() {
        let e = SddError::Truncated {
            context: "store header",
            expected: 64,
            actual: 10,
        };
        assert!(e.to_string().contains("store header"));
        assert!(e.to_string().contains("64"));
        let e = SddError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains('9'));
        let e = SddError::ChecksumMismatch {
            context: "store payload",
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("checksum"));
        let e = SddError::io("dict.sddb", &std::io::Error::other("disk on fire"));
        assert!(e.to_string().contains("dict.sddb"));
        assert!(e.to_string().contains("disk on fire"));
        let e = SddError::TooLarge {
            context: "class count",
            max: u64::from(u32::MAX),
            actual: u64::from(u32::MAX) + 1,
        };
        assert!(e.to_string().contains("class count"));
        assert!(e.to_string().contains("4294967296"));
    }

    #[test]
    fn bitvec_parse_errors_convert() {
        let err = "01z".parse::<BitVec>().unwrap_err();
        let e: SddError = err.into();
        assert!(matches!(e, SddError::Parse { line: 0, .. }));
        assert!(e.to_string().contains("position 2"));
    }
}
