//! The workspace-wide error type.
//!
//! Production diagnosis pipelines feed this workspace data from outside the
//! program: `.bench` netlists, serialized dictionaries, tester datalogs.
//! Malformed or mismatched input must surface as an error with context — not
//! an abort — so every fallible boundary converges on [`SddError`]. Crates
//! higher in the stack define `From` impls turning their local error types
//! (`NetlistError`, `ParseDictionaryError`, …) into `SddError`, letting a
//! whole pipeline run under one `Result` type.

use std::error::Error;
use std::fmt;

use crate::ParseBitVecError;

/// An error anywhere in the same/different diagnosis pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SddError {
    /// Two vectors that must be comparable have different widths.
    WidthMismatch {
        /// What was being compared (e.g. `"observed signature"`).
        context: &'static str,
        /// The width required.
        expected: usize,
        /// The width received.
        actual: usize,
    },
    /// A collection has the wrong number of elements.
    CountMismatch {
        /// What was being counted (e.g. `"responses per test"`).
        context: &'static str,
        /// The count required.
        expected: usize,
        /// The count received.
        actual: usize,
    },
    /// Text input failed to parse.
    Parse {
        /// 1-based line number, or 0 when no line applies.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Structurally invalid input that is not a per-line parse failure.
    Invalid {
        /// What went wrong.
        message: String,
    },
    /// There is nothing to match against (e.g. an empty dictionary).
    Empty {
        /// What was empty.
        context: &'static str,
    },
}

impl SddError {
    /// Convenience constructor for [`SddError::Invalid`].
    pub fn invalid(message: impl Into<String>) -> Self {
        SddError::Invalid {
            message: message.into(),
        }
    }
}

impl fmt::Display for SddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SddError::WidthMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "{context}: width {actual} does not match expected {expected}"
            ),
            SddError::CountMismatch {
                context,
                expected,
                actual,
            } => write!(f, "{context}: got {actual}, expected {expected}"),
            SddError::Parse { line: 0, message } => write!(f, "parse error: {message}"),
            SddError::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
            SddError::Invalid { message } => write!(f, "invalid input: {message}"),
            SddError::Empty { context } => write!(f, "{context} is empty"),
        }
    }
}

impl Error for SddError {}

impl From<ParseBitVecError> for SddError {
    fn from(e: ParseBitVecError) -> Self {
        SddError::Parse {
            line: 0,
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitVec;

    #[test]
    fn display_formats_include_context() {
        let e = SddError::WidthMismatch {
            context: "observed signature",
            expected: 4,
            actual: 3,
        };
        assert!(e.to_string().contains("observed signature"));
        assert!(e.to_string().contains('4'));
        let e = SddError::Parse {
            line: 7,
            message: "bad magic".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let e = SddError::Parse {
            line: 0,
            message: "bad bit".into(),
        };
        assert!(!e.to_string().contains("line"));
        assert!(SddError::Empty {
            context: "dictionary"
        }
        .to_string()
        .contains("empty"));
    }

    #[test]
    fn bitvec_parse_errors_convert() {
        let err = "01z".parse::<BitVec>().unwrap_err();
        let e: SddError = err.into();
        assert!(matches!(e, SddError::Parse { line: 0, .. }));
        assert!(e.to_string().contains("position 2"));
    }
}
