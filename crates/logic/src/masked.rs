//! Ternary observed vectors: per-bit known/unknown over [`BitVec`].
//!
//! A tester's datalog rarely pins down every observation. Fail memory
//! overflows truncate the log, masked scan cells read `X`, and flaky strobes
//! get discarded — so the vector diagnosis actually has in hand is ternary:
//! each bit is `0`, `1`, or *unknown*. [`MaskedBitVec`] pairs a value vector
//! with a known-mask and defines the masked comparisons the noise-tolerant
//! diagnosis flow is built on: mismatches are only counted where the
//! observation is known, and the known-bit count is reported alongside so
//! callers can turn the pair into a confidence score.

use std::fmt;
use std::str::FromStr;

use crate::{BitVec, SddError};

/// A bit vector in which each position is known-`0`, known-`1`, or unknown.
///
/// Displayed and parsed as a string of `0`, `1` and `X`.
///
/// # Example
///
/// ```
/// use sdd_logic::MaskedBitVec;
///
/// let observed: MaskedBitVec = "1X0".parse()?;
/// assert_eq!(observed.known_count(), 2);
/// let stored: sdd_logic::BitVec = "110".parse()?;
/// // One known mismatch (bit 1 is masked out of the comparison):
/// let d = observed.distance_to(&stored)?;
/// assert_eq!((d.mismatches, d.known), (0, 2));
/// # Ok::<(), sdd_logic::SddError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MaskedBitVec {
    bits: BitVec,
    known: BitVec,
}

/// The result of comparing a [`MaskedBitVec`] with a fully-known vector:
/// how many known bits disagree, out of how many known bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskedDistance {
    /// Known positions at which the vectors differ.
    pub mismatches: usize,
    /// Number of known positions compared.
    pub known: usize,
}

impl MaskedBitVec {
    /// Wraps a fully-known vector: every bit of `bits` is trusted.
    pub fn from_known(bits: BitVec) -> Self {
        let known = !&BitVec::zeros(bits.len());
        Self { bits, known }
    }

    /// A vector of `len` bits, all unknown.
    pub fn unknown(len: usize) -> Self {
        Self {
            bits: BitVec::zeros(len),
            known: BitVec::zeros(len),
        }
    }

    /// Assembles from a value vector and a known-mask of the same width.
    ///
    /// # Errors
    ///
    /// Returns [`SddError::WidthMismatch`] when the widths differ.
    pub fn from_parts(bits: BitVec, known: BitVec) -> Result<Self, SddError> {
        if bits.len() != known.len() {
            return Err(SddError::WidthMismatch {
                context: "masked vector known-mask",
                expected: bits.len(),
                actual: known.len(),
            });
        }
        Ok(Self { bits, known })
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Returns `true` when the vector has no positions.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of known positions.
    pub fn known_count(&self) -> usize {
        self.known.count_ones()
    }

    /// Number of unknown positions.
    pub fn unknown_count(&self) -> usize {
        self.len() - self.known_count()
    }

    /// Returns `true` when every position is known.
    pub fn is_fully_known(&self) -> bool {
        self.known_count() == self.len()
    }

    /// The bit at `index`: `Some(value)` when known, `None` when unknown.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn bit(&self, index: usize) -> Option<bool> {
        self.known.bit(index).then(|| self.bits.bit(index))
    }

    /// Sets the bit at `index` to a known value.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn set_known(&mut self, index: usize, value: bool) {
        self.bits.set(index, value);
        self.known.set(index, true);
    }

    /// Marks the bit at `index` unknown.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn mask(&mut self, index: usize) {
        self.known.set(index, false);
        self.bits.set(index, false);
    }

    /// Flips the bit at `index` if it is known; unknown bits stay unknown.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn flip(&mut self, index: usize) {
        if self.known.bit(index) {
            self.bits.toggle(index);
        }
    }

    /// The underlying value vector (unknown positions read `0`).
    pub fn values(&self) -> &BitVec {
        &self.bits
    }

    /// The known-mask (bit set ⇔ position known).
    pub fn known_mask(&self) -> &BitVec {
        &self.known
    }

    /// Counts disagreements with a fully-known vector over the known
    /// positions only.
    ///
    /// # Errors
    ///
    /// Returns [`SddError::WidthMismatch`] when the widths differ.
    pub fn distance_to(&self, other: &BitVec) -> Result<MaskedDistance, SddError> {
        if self.len() != other.len() {
            return Err(SddError::WidthMismatch {
                context: "masked comparison",
                expected: self.len(),
                actual: other.len(),
            });
        }
        let diff = &self.bits ^ other;
        let mismatches = (&diff & &self.known).count_ones();
        Ok(MaskedDistance {
            mismatches,
            known: self.known_count(),
        })
    }

    /// Returns `true` when the two vectors agree at every position known in
    /// *both* — the consistency relation truncation must preserve.
    ///
    /// # Errors
    ///
    /// Returns [`SddError::WidthMismatch`] when the widths differ.
    pub fn consistent_with(&self, other: &MaskedBitVec) -> Result<bool, SddError> {
        if self.len() != other.len() {
            return Err(SddError::WidthMismatch {
                context: "masked consistency check",
                expected: self.len(),
                actual: other.len(),
            });
        }
        let both = &self.known & &other.known;
        let diff = &self.bits ^ &other.bits;
        Ok(!(&diff & &both).any())
    }
}

impl From<BitVec> for MaskedBitVec {
    fn from(bits: BitVec) -> Self {
        Self::from_known(bits)
    }
}

impl fmt::Display for MaskedBitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len() {
            f.write_str(match self.bit(i) {
                None => "X",
                Some(true) => "1",
                Some(false) => "0",
            })?;
        }
        Ok(())
    }
}

impl fmt::Debug for MaskedBitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MaskedBitVec(\"{self}\")")
    }
}

impl FromStr for MaskedBitVec {
    type Err = SddError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut v = MaskedBitVec::unknown(0);
        for (position, c) in s.chars().enumerate() {
            v.bits.push(false);
            v.known.push(false);
            match c {
                '0' => v.set_known(position, false),
                '1' => v.set_known(position, true),
                'x' | 'X' | '-' => {}
                offending => {
                    return Err(SddError::Parse {
                        line: 0,
                        message: format!(
                            "invalid masked bit character {offending:?} at position {position}"
                        ),
                    })
                }
            }
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(s: &str) -> BitVec {
        s.parse().unwrap()
    }

    #[test]
    fn parse_display_round_trip() {
        for s in ["", "0", "1", "X", "01X10", "XXXX"] {
            let v: MaskedBitVec = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        let lower: MaskedBitVec = "0x1-".parse().unwrap();
        assert_eq!(lower.to_string(), "0X1X", "x and - normalize to X");
        assert!("01?".parse::<MaskedBitVec>().is_err());
    }

    #[test]
    fn from_known_knows_everything() {
        let v = MaskedBitVec::from_known(bv("0110"));
        assert!(v.is_fully_known());
        assert_eq!(v.unknown_count(), 0);
        assert_eq!(v.bit(1), Some(true));
        assert_eq!(v.to_string(), "0110");
    }

    #[test]
    fn unknown_knows_nothing() {
        let v = MaskedBitVec::unknown(3);
        assert_eq!(v.known_count(), 0);
        assert_eq!(v.bit(0), None);
        assert_eq!(v.to_string(), "XXX");
    }

    #[test]
    fn mask_and_set_and_flip() {
        let mut v = MaskedBitVec::from_known(bv("101"));
        v.mask(0);
        assert_eq!(v.bit(0), None);
        assert_eq!(v.known_count(), 2);
        v.flip(0); // unknown stays unknown
        assert_eq!(v.bit(0), None);
        v.flip(1);
        assert_eq!(v.bit(1), Some(true));
        v.set_known(0, true);
        assert_eq!(v.to_string(), "111");
    }

    #[test]
    fn distance_ignores_unknowns() {
        let v: MaskedBitVec = "1X0X".parse().unwrap();
        let d = v.distance_to(&bv("0100")).unwrap();
        assert_eq!(
            d,
            MaskedDistance {
                mismatches: 1,
                known: 2
            }
        );
        let d = v.distance_to(&bv("1100")).unwrap();
        assert_eq!(
            d,
            MaskedDistance {
                mismatches: 0,
                known: 2
            }
        );
    }

    #[test]
    fn distance_width_mismatch_is_error() {
        let v: MaskedBitVec = "10".parse().unwrap();
        let e = v.distance_to(&bv("100")).unwrap_err();
        assert!(matches!(
            e,
            SddError::WidthMismatch {
                expected: 2,
                actual: 3,
                ..
            }
        ));
    }

    #[test]
    fn fully_known_distance_matches_hamming() {
        let a = bv("0110100111");
        let b = bv("1110001111");
        let d = MaskedBitVec::from_known(a.clone()).distance_to(&b).unwrap();
        assert_eq!(Some(d.mismatches), a.hamming_distance(&b));
        assert_eq!(d.known, a.len());
    }

    #[test]
    fn consistency_is_about_shared_known_bits() {
        let a: MaskedBitVec = "1X0".parse().unwrap();
        let b: MaskedBitVec = "1XX".parse().unwrap();
        assert!(a.consistent_with(&b).unwrap());
        assert!(b.consistent_with(&a).unwrap());
        let c: MaskedBitVec = "0X0".parse().unwrap();
        assert!(!a.consistent_with(&c).unwrap());
        assert!(a.consistent_with(&"1X".parse().unwrap()).is_err());
    }

    #[test]
    fn from_parts_checks_widths() {
        assert!(MaskedBitVec::from_parts(bv("10"), bv("11")).is_ok());
        assert!(matches!(
            MaskedBitVec::from_parts(bv("10"), bv("1")),
            Err(SddError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn debug_shows_ternary_string() {
        let v: MaskedBitVec = "1X".parse().unwrap();
        assert_eq!(format!("{v:?}"), "MaskedBitVec(\"1X\")");
    }
}
