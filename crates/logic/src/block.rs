//! Transposed pattern blocks for parallel-pattern simulation.

use crate::BitVec;

/// Number of patterns simulated in parallel by one machine word.
pub const LANES: usize = 64;

/// A block of up to [`LANES`] input patterns, transposed so that each signal
/// carries one `u64` whose bit `p` is the signal's value under pattern `p`.
///
/// Parallel-pattern single-fault propagation (PPSFP) simulates the fault-free
/// circuit and then each fault over a whole block at once; the transposition
/// is what turns 64 pattern evaluations into one word-wide gate evaluation.
///
/// # Example
///
/// ```
/// use sdd_logic::{BitVec, PatternBlock};
///
/// let t0: BitVec = "00".parse()?; // two inputs
/// let t1: BitVec = "11".parse()?;
/// let block = PatternBlock::from_patterns(2, &[t0, t1]);
/// assert_eq!(block.pattern_count(), 2);
/// // Input 0 is 0 under pattern 0 and 1 under pattern 1 → word 0b10.
/// assert_eq!(block.input_word(0) & 0b11, 0b10);
/// # Ok::<(), sdd_logic::ParseBitVecError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternBlock {
    /// One word per input; bit `p` = value of the input under pattern `p`.
    words: Vec<u64>,
    pattern_count: usize,
}

impl PatternBlock {
    /// Transposes `patterns` (each of length `inputs`) into a block.
    ///
    /// # Panics
    ///
    /// Panics if more than [`LANES`] patterns are given, or if any pattern's
    /// length differs from `inputs`.
    pub fn from_patterns(inputs: usize, patterns: &[BitVec]) -> Self {
        assert!(
            patterns.len() <= LANES,
            "a block holds at most {LANES} patterns, got {}",
            patterns.len()
        );
        let mut words = vec![0u64; inputs];
        for (p, pattern) in patterns.iter().enumerate() {
            assert_eq!(
                pattern.len(),
                inputs,
                "pattern {p} has {} bits, circuit has {inputs} inputs",
                pattern.len()
            );
            for (i, bit) in pattern.iter().enumerate() {
                if bit {
                    words[i] |= 1 << p;
                }
            }
        }
        Self {
            words,
            pattern_count: patterns.len(),
        }
    }

    /// Number of patterns in the block (≤ [`LANES`]).
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// Number of inputs each pattern assigns.
    pub fn input_count(&self) -> usize {
        self.words.len()
    }

    /// The transposed word for input `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn input_word(&self, index: usize) -> u64 {
        self.words[index]
    }

    /// Mask with one bit set per valid pattern lane.
    pub fn lane_mask(&self) -> u64 {
        if self.pattern_count == LANES {
            u64::MAX
        } else {
            (1u64 << self.pattern_count) - 1
        }
    }

    /// Splits a pattern list into blocks of at most [`LANES`] patterns.
    ///
    /// # Example
    ///
    /// ```
    /// use sdd_logic::{BitVec, PatternBlock};
    /// let patterns: Vec<BitVec> = (0..100).map(|_| BitVec::zeros(3)).collect();
    /// let blocks = PatternBlock::blocks(3, &patterns);
    /// assert_eq!(blocks.len(), 2);
    /// assert_eq!(blocks[0].pattern_count(), 64);
    /// assert_eq!(blocks[1].pattern_count(), 36);
    /// ```
    pub fn blocks(inputs: usize, patterns: &[BitVec]) -> Vec<Self> {
        patterns
            .chunks(LANES)
            .map(|chunk| Self::from_patterns(inputs, chunk))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(s: &str) -> BitVec {
        s.parse().unwrap()
    }

    #[test]
    fn transposition_matches_definition() {
        let block = PatternBlock::from_patterns(3, &[bv("101"), bv("011"), bv("110")]);
        // input 0: pattern values 1,0,1 → 0b101
        assert_eq!(block.input_word(0), 0b101);
        // input 1: pattern values 0,1,1 → 0b110
        assert_eq!(block.input_word(1), 0b110);
        // input 2: pattern values 1,1,0 → 0b011
        assert_eq!(block.input_word(2), 0b011);
        assert_eq!(block.pattern_count(), 3);
        assert_eq!(block.input_count(), 3);
        assert_eq!(block.lane_mask(), 0b111);
    }

    #[test]
    fn full_block_lane_mask_is_all_ones() {
        let patterns: Vec<BitVec> = (0..LANES).map(|_| bv("1")).collect();
        let block = PatternBlock::from_patterns(1, &patterns);
        assert_eq!(block.lane_mask(), u64::MAX);
        assert_eq!(block.input_word(0), u64::MAX);
    }

    #[test]
    fn empty_block_is_valid() {
        let block = PatternBlock::from_patterns(4, &[]);
        assert_eq!(block.pattern_count(), 0);
        assert_eq!(block.lane_mask(), 0);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_patterns_panics() {
        let patterns: Vec<BitVec> = (0..65).map(|_| bv("0")).collect();
        PatternBlock::from_patterns(1, &patterns);
    }

    #[test]
    #[should_panic(expected = "circuit has 2 inputs")]
    fn wrong_width_panics() {
        PatternBlock::from_patterns(2, &[bv("101")]);
    }

    #[test]
    fn blocks_partition_preserves_order() {
        let patterns: Vec<BitVec> = (0..130)
            .map(|i| if i % 2 == 0 { bv("0") } else { bv("1") })
            .collect();
        let blocks = PatternBlock::blocks(1, &patterns);
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[2].pattern_count(), 2);
        // pattern 64 is even → 0; check it landed in lane 0 of block 1.
        assert_eq!(blocks[1].input_word(0) & 1, 0);
        assert_eq!(blocks[1].input_word(0) >> 1 & 1, 1);
    }
}
