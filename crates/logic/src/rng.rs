//! A small, seeded, dependency-free pseudo-random number generator.
//!
//! Every randomized procedure in the workspace (test-order shuffles in
//! Procedure 1, random-pattern ATPG, the synthetic benchmark generator) needs
//! reproducible randomness, not cryptographic strength. [`Prng`] is a
//! SplitMix64 stream: 64 bits of state, a handful of arithmetic ops per
//! draw, and exactly the same sequence on every platform for a given seed —
//! so `cargo build --offline` works with no registry access and experiment
//! results are stable across machines.

use std::ops::{Range, RangeInclusive};

/// A seeded SplitMix64 pseudo-random number generator.
///
/// # Example
///
/// ```
/// use sdd_logic::Prng;
///
/// let mut a = Prng::seed_from_u64(7);
/// let mut b = Prng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let roll = a.gen_range(0..6);
/// assert!(roll < 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea & Flood): increment by the golden-ratio
        // constant, then mix. Passes BigCrush; trivially seedable.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.next_f64() < p
    }

    /// A uniform integer in `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> usize {
        range.sample(self)
    }

    /// A uniform integer in `[0, bound)` without modulo bias.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection sampling on the top of the range keeps the draw exact.
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let raw = self.next_u64();
            if raw < zone {
                return raw % bound;
            }
        }
    }

    /// Fisher–Yates shuffle of `slice` in place.
    ///
    /// # Example
    ///
    /// ```
    /// use sdd_logic::Prng;
    ///
    /// let mut order: Vec<usize> = (0..10).collect();
    /// Prng::seed_from_u64(3).shuffle(&mut order);
    /// let mut sorted = order.clone();
    /// sorted.sort_unstable();
    /// assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    /// ```
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of `slice`, or `None` when it is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len() as u64) as usize])
        }
    }
}

/// Ranges [`Prng::gen_range`] can sample from.
pub trait SampleRange {
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut Prng) -> usize;
}

impl SampleRange for Range<usize> {
    fn sample(self, rng: &mut Prng) -> usize {
        assert!(
            self.start < self.end,
            "empty range {}..{}",
            self.start,
            self.end
        );
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    fn sample(self, rng: &mut Prng) -> usize {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range {start}..={end}");
        let span = (end - start) as u64;
        if span == u64::MAX {
            return rng.next_u64() as usize;
        }
        start + rng.below(span + 1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Prng::seed_from_u64(99);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Prng::seed_from_u64(99);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = Prng::seed_from_u64(100).next_u64();
        assert_ne!(a[0], c, "different seeds diverge immediately");
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values for seed 1234567 from the SplitMix64 paper's
        // public-domain C implementation.
        let mut r = Prng::seed_from_u64(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Prng::seed_from_u64(5);
        for _ in 0..1000 {
            let x = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(4..=4);
            assert_eq!(y, 4);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = Prng::seed_from_u64(8);
        let mut seen = [false; 6];
        for _ in 0..300 {
            seen[r.gen_range(0..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut r = Prng::seed_from_u64(11);
        assert!((0..50).all(|_| !r.gen_bool(0.0)));
        assert!((0..50).all(|_| r.gen_bool(1.0)));
        let heads = (0..2000).filter(|_| r.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "{heads}/2000");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Prng::seed_from_u64(2);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "astronomically unlikely to be identity"
        );
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_and_singleton() {
        let mut r = Prng::seed_from_u64(0);
        assert_eq!(r.choose::<u32>(&[]), None);
        assert_eq!(r.choose(&[7]), Some(&7));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_probability_panics() {
        Prng::seed_from_u64(0).gen_bool(1.5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Prng::seed_from_u64(0).gen_range(5..5);
    }
}
