//! Detection and n-detection test-set generation with compaction.

use std::collections::HashSet;

use sdd_logic::Prng;

use sdd_fault::{FaultId, FaultUniverse};
use sdd_logic::{BitVec, PatternBlock, LANES};
use sdd_netlist::{Circuit, CombView};
use sdd_sim::{Engine, ResponseMatrix};

use crate::{random_patterns, FillMode, Podem, PodemOutcome};

/// Knobs for test-set generation. The defaults reproduce the workspace's
/// experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtpgOptions {
    /// Seed for every random choice (patterns, PODEM randomization, fill).
    pub seed: u64,
    /// PODEM backtrack budget per fault attempt.
    pub backtrack_limit: usize,
    /// Maximum number of 64-pattern random blocks in the random phase.
    pub max_random_blocks: usize,
    /// Random phase stops after this many consecutive unproductive blocks.
    pub stale_random_blocks: usize,
    /// Deterministic attempts per missing detection of a fault.
    pub attempts_per_deficit: usize,
    /// Run reverse-order compaction on the final set.
    pub compact: bool,
    /// When PODEM aborts at its backtrack limit, fall back to the complete
    /// SAT engine: the fault either gets a test or a redundancy proof, and
    /// the `aborted` list stays empty wherever SAT is affordable.
    pub sat_fallback: bool,
}

impl Default for AtpgOptions {
    fn default() -> Self {
        Self {
            seed: 1,
            backtrack_limit: 4096,
            max_random_blocks: 64,
            stale_random_blocks: 2,
            attempts_per_deficit: 3,
            compact: true,
            sat_fallback: true,
        }
    }
}

/// A generated test set together with the faults that could not be covered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedTestSet {
    /// The tests, one [`BitVec`] per view input vector.
    pub tests: Vec<BitVec>,
    /// Faults proven untestable (redundant) by PODEM.
    pub untestable: Vec<FaultId>,
    /// Faults abandoned at the backtrack limit with no test found.
    pub aborted: Vec<FaultId>,
}

impl GeneratedTestSet {
    /// Number of tests (the paper's `|T|`).
    pub fn len(&self) -> usize {
        self.tests.len()
    }

    /// Returns `true` when no tests were generated.
    pub fn is_empty(&self) -> bool {
        self.tests.is_empty()
    }
}

/// Generates an `n`-detection test set: every testable fault in `faults`
/// is detected by at least `n` distinct tests (fewer only if PODEM gives up
/// or the fault has fewer than `n` distinguishable detections).
///
/// `n = 1` yields a plain detection test set; the paper's second test-set
/// type is `n = 10`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn generate_detection(
    circuit: &Circuit,
    view: &CombView,
    universe: &FaultUniverse,
    faults: &[FaultId],
    n: u32,
    options: &AtpgOptions,
) -> GeneratedTestSet {
    assert!(n > 0, "n-detection requires n >= 1");
    let width = view.inputs().len();
    let mut rng = Prng::seed_from_u64(options.seed);
    let mut deficit: Vec<u32> = vec![n; faults.len()];
    let mut tests: Vec<BitVec> = Vec::new();
    let mut seen: HashSet<BitVec> = HashSet::new();
    let mut engine = Engine::new(circuit, view);

    // ---- Random phase: cheap detections first. ----
    let mut stale = 0;
    for _ in 0..options.max_random_blocks {
        if deficit.iter().all(|&d| d == 0) || stale >= options.stale_random_blocks {
            break;
        }
        let block_tests = random_patterns(width, LANES, &mut rng);
        let kept = absorb_block(
            view,
            universe,
            faults,
            &mut engine,
            &block_tests,
            &mut deficit,
            &mut tests,
            &mut seen,
        );
        if kept == 0 {
            stale += 1;
        } else {
            stale = 0;
        }
    }

    // ---- Deterministic phase: PODEM per remaining deficit. ----
    let mut podem = Podem::new(circuit, view)
        .with_backtrack_limit(options.backtrack_limit)
        .with_fill(if n > 1 {
            FillMode::Random
        } else {
            FillMode::Zero
        })
        .with_randomized_search(n > 1);
    let mut untestable = Vec::new();
    let mut aborted = Vec::new();
    let mut pending: Vec<BitVec> = Vec::new();

    for (pos, &fault_id) in faults.iter().enumerate() {
        if deficit[pos] == 0 {
            continue;
        }
        // Flush pending tests so dropping is up to date before spending
        // deterministic effort on this fault.
        if !pending.is_empty() {
            let batch = std::mem::take(&mut pending);
            absorb_block(
                view,
                universe,
                faults,
                &mut engine,
                &batch,
                &mut deficit,
                &mut tests,
                &mut seen,
            );
            if deficit[pos] == 0 {
                continue;
            }
        }
        let fault = universe.fault(fault_id);
        let budget = options.attempts_per_deficit * deficit[pos] as usize + 1;
        let mut produced = 0u32;
        let mut gave_up = None;
        for _ in 0..budget {
            if produced >= deficit[pos] {
                break;
            }
            match podem.generate(fault, &mut rng) {
                PodemOutcome::Test(test) => {
                    if seen.contains(&test) || pending.contains(&test) {
                        continue; // already have this vector; try again
                    }
                    pending.push(test);
                    produced += 1;
                }
                PodemOutcome::Untestable => {
                    gave_up = Some(false);
                    break;
                }
                PodemOutcome::Aborted => {
                    gave_up = Some(true);
                    break;
                }
            }
        }
        match gave_up {
            Some(false) => untestable.push(fault_id),
            Some(true) if produced == 0 && deficit[pos] == n => {
                // PODEM ran out of budget with nothing to show. The SAT
                // engine usually settles the fault outright; it runs with
                // its own (generous) budget so a pathological miter cannot
                // stall the whole flow.
                let settled = options.sat_fallback.then(|| {
                    crate::sat::generate_sat_bounded(
                        circuit,
                        view,
                        fault,
                        Some((options.backtrack_limit * 8).max(20_000)),
                    )
                });
                match settled.flatten() {
                    Some(crate::sat::SatOutcome::Test(test)) => {
                        if !seen.contains(&test) && !pending.contains(&test) {
                            pending.push(test);
                        }
                    }
                    Some(crate::sat::SatOutcome::Untestable) => untestable.push(fault_id),
                    None => aborted.push(fault_id),
                }
            }
            _ => {}
        }
    }
    if !pending.is_empty() {
        absorb_block(
            view,
            universe,
            faults,
            &mut engine,
            &pending,
            &mut deficit,
            &mut tests,
            &mut seen,
        );
    }

    if options.compact {
        tests = reverse_compact(circuit, view, universe, faults, &tests, n);
    }

    GeneratedTestSet {
        tests,
        untestable,
        aborted,
    }
}

/// Simulates a batch of candidate tests and keeps each test that supplies at
/// least one missing detection. Returns how many tests were kept.
#[allow(clippy::too_many_arguments)]
fn absorb_block(
    view: &CombView,
    universe: &FaultUniverse,
    faults: &[FaultId],
    engine: &mut Engine<'_>,
    candidates: &[BitVec],
    deficit: &mut [u32],
    tests: &mut Vec<BitVec>,
    seen: &mut HashSet<BitVec>,
) -> usize {
    let width = view.inputs().len();
    let mut kept = 0;
    for chunk in candidates.chunks(LANES) {
        engine.load_block(&PatternBlock::from_patterns(width, chunk));
        // Detection words for faults that still need detections.
        let mut words: Vec<(usize, u64)> = Vec::new();
        for (pos, &fault_id) in faults.iter().enumerate() {
            if deficit[pos] > 0 {
                let w = engine.detect_lanes(universe.fault(fault_id));
                if w != 0 {
                    words.push((pos, w));
                }
            }
        }
        for (lane, test) in chunk.iter().enumerate() {
            if seen.contains(test) {
                continue;
            }
            let helped: Vec<usize> = words
                .iter()
                .filter(|&&(pos, w)| deficit[pos] > 0 && w >> lane & 1 == 1)
                .map(|&(pos, _)| pos)
                .collect();
            if helped.is_empty() {
                continue;
            }
            for pos in helped {
                deficit[pos] -= 1;
            }
            seen.insert(test.clone());
            tests.push(test.clone());
            kept += 1;
        }
    }
    kept
}

/// Reverse-order test-set compaction for `n`-detection sets.
///
/// Processes tests from last to first and drops a test when every fault it
/// detects keeps at least `min(n, total detections of that fault)`
/// detections without it. For `n = 1` this is the classic reverse-order
/// compaction pass.
///
/// # Example
///
/// ```
/// use sdd_atpg::reverse_compact;
/// use sdd_fault::FaultUniverse;
/// use sdd_netlist::{library, CombView};
/// use sdd_logic::BitVec;
///
/// let c17 = library::c17();
/// let view = CombView::new(&c17);
/// let u = FaultUniverse::enumerate(&c17);
/// let collapsed = u.collapse_on(&c17);
/// // Duplicated tests compact away:
/// let t: BitVec = "10111".parse()?;
/// let tests = vec![t.clone(), t.clone(), t];
/// let compacted = reverse_compact(&c17, &view, &u, collapsed.representatives(), &tests, 1);
/// assert_eq!(compacted.len(), 1);
/// # Ok::<(), sdd_logic::ParseBitVecError>(())
/// ```
pub fn reverse_compact(
    circuit: &Circuit,
    view: &CombView,
    universe: &FaultUniverse,
    faults: &[FaultId],
    tests: &[BitVec],
    n: u32,
) -> Vec<BitVec> {
    if tests.is_empty() {
        return Vec::new();
    }
    let matrix = ResponseMatrix::simulate(circuit, view, universe, faults, tests);
    let totals = matrix.detection_counts();
    let required: Vec<u32> = totals.iter().map(|&t| t.min(n)).collect();
    let mut live = totals;
    let mut keep = vec![true; tests.len()];
    for test in (0..tests.len()).rev() {
        let row = matrix.classes(test);
        let droppable = row
            .iter()
            .enumerate()
            .all(|(fault, &class)| class == 0 || live[fault] > required[fault]);
        if droppable {
            keep[test] = false;
            for (fault, &class) in row.iter().enumerate() {
                if class != 0 {
                    live[fault] -= 1;
                }
            }
        }
    }
    tests
        .iter()
        .zip(&keep)
        .filter(|&(_, &k)| k)
        .map(|(t, _)| t.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_netlist::{generator, library};

    fn coverage_check(
        circuit: &Circuit,
        set: &GeneratedTestSet,
        universe: &FaultUniverse,
        faults: &[FaultId],
        n: u32,
    ) {
        let view = CombView::new(circuit);
        let matrix = ResponseMatrix::simulate(circuit, &view, universe, faults, &set.tests);
        let counts = matrix.detection_counts();
        for (pos, &fault_id) in faults.iter().enumerate() {
            if set.untestable.contains(&fault_id) || set.aborted.contains(&fault_id) {
                continue;
            }
            assert!(
                counts[pos] >= n.min(counts[pos].max(1)),
                "{} detected {} < {n} times",
                universe.fault(fault_id).describe(circuit),
                counts[pos]
            );
            assert!(
                counts[pos] >= 1,
                "{} undetected",
                universe.fault(fault_id).describe(circuit)
            );
        }
    }

    #[test]
    fn one_detect_covers_all_c17_faults() {
        let c = library::c17();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let collapsed = universe.collapse_on(&c);
        let set = generate_detection(
            &c,
            &view,
            &universe,
            collapsed.representatives(),
            1,
            &AtpgOptions::default(),
        );
        assert!(set.untestable.is_empty());
        assert!(set.aborted.is_empty());
        coverage_check(&c, &set, &universe, collapsed.representatives(), 1);
        // c17 is fully testable with very few tests.
        assert!(set.len() <= 10, "{} tests is not compact", set.len());
    }

    #[test]
    fn ten_detect_is_larger_than_one_detect() {
        let c = generator::iscas89("s298", 11).unwrap();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let collapsed = universe.collapse_on(&c);
        let faults = collapsed.representatives();
        let one = generate_detection(&c, &view, &universe, faults, 1, &AtpgOptions::default());
        let ten = generate_detection(&c, &view, &universe, faults, 10, &AtpgOptions::default());
        assert!(
            ten.len() > one.len(),
            "10-detect ({}) should exceed 1-detect ({})",
            ten.len(),
            one.len()
        );
        coverage_check(&c, &ten, &universe, faults, 10);
    }

    #[test]
    fn ten_detect_counts_verified_exactly() {
        let c = library::c17();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let collapsed = universe.collapse_on(&c);
        let faults = collapsed.representatives();
        let set = generate_detection(&c, &view, &universe, faults, 10, &AtpgOptions::default());
        let matrix = ResponseMatrix::simulate(&c, &view, &universe, faults, &set.tests);
        let counts = matrix.detection_counts();
        // c17 with 5 inputs has at most 32 distinct tests; each fault is
        // detected by however many exist, at least min(10, possible).
        for (pos, &id) in faults.iter().enumerate() {
            let fault = universe.fault(id);
            let possible = (0u32..32)
                .filter(|&w| {
                    let pattern: BitVec = (0..5).map(|i| w >> i & 1 == 1).collect();
                    sdd_sim::reference::faulty_response(&c, &view, fault, &pattern)
                        != sdd_sim::reference::good_response(&c, &view, &pattern)
                })
                .count() as u32;
            assert!(
                counts[pos] >= possible.min(10),
                "{}: {} < min(10, {possible})",
                fault.describe(&c),
                counts[pos]
            );
        }
    }

    #[test]
    fn compaction_preserves_coverage() {
        let c = generator::iscas89("s208", 4).unwrap();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let collapsed = universe.collapse_on(&c);
        let faults = collapsed.representatives();
        let loose = generate_detection(
            &c,
            &view,
            &universe,
            faults,
            1,
            &AtpgOptions {
                compact: false,
                ..AtpgOptions::default()
            },
        );
        let tight = reverse_compact(&c, &view, &universe, faults, &loose.tests, 1);
        assert!(tight.len() <= loose.tests.len());
        let before = ResponseMatrix::simulate(&c, &view, &universe, faults, &loose.tests);
        let after = ResponseMatrix::simulate(&c, &view, &universe, faults, &tight);
        for fault in 0..faults.len() {
            let covered_before = before.detection_counts()[fault] > 0;
            let covered_after = after.detection_counts()[fault] > 0;
            assert_eq!(covered_before, covered_after, "fault {fault}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let c = library::c17();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let collapsed = universe.collapse_on(&c);
        let opts = AtpgOptions::default();
        let a = generate_detection(&c, &view, &universe, collapsed.representatives(), 1, &opts);
        let b = generate_detection(&c, &view, &universe, collapsed.representatives(), 1, &opts);
        assert_eq!(a, b);
    }

    #[test]
    fn sat_fallback_eliminates_aborts() {
        // With a zero backtrack budget PODEM aborts on anything nontrivial;
        // the SAT fallback must still settle every fault definitively.
        let c = generator::iscas89("s208", 4).unwrap();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let collapsed = universe.collapse_on(&c);
        let faults = collapsed.representatives();
        let opts = AtpgOptions {
            backtrack_limit: 0,
            max_random_blocks: 0, // force the deterministic phase to work
            sat_fallback: true,
            ..AtpgOptions::default()
        };
        let set = generate_detection(&c, &view, &universe, faults, 1, &opts);
        assert!(set.aborted.is_empty(), "SAT settles everything");
        let matrix = ResponseMatrix::simulate(&c, &view, &universe, faults, &set.tests);
        let counts = matrix.detection_counts();
        for (pos, &id) in faults.iter().enumerate() {
            if !set.untestable.contains(&id) {
                assert!(counts[pos] > 0, "{}", universe.fault(id).describe(&c));
            }
        }
    }

    #[test]
    #[should_panic(expected = "n >= 1")]
    fn zero_detection_panics() {
        let c = library::c17();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let collapsed = universe.collapse_on(&c);
        generate_detection(
            &c,
            &view,
            &universe,
            collapsed.representatives(),
            0,
            &AtpgOptions::default(),
        );
    }

    #[test]
    fn empty_test_list_compacts_to_empty() {
        let c = library::c17();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let collapsed = universe.collapse_on(&c);
        assert!(
            reverse_compact(&c, &view, &universe, collapsed.representatives(), &[], 1).is_empty()
        );
    }
}
