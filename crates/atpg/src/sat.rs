//! SAT-based test generation.
//!
//! A test for fault `f` exists iff the *miter* formula is satisfiable:
//! encode the fault-free circuit and the faulty circuit (which differs only
//! in the fan-out cone of the fault site) over shared inputs, and require
//! some observed output to differ. This module Tseitin-encodes the miter
//! and asks the [`sdd_sat`] DPLL solver — a complete decision procedure, so
//! `Untestable` here is a redundancy *proof* with no backtrack-limit
//! caveat, and an independent oracle for [`Podem`](crate::Podem).

use std::collections::HashMap;

use sdd_fault::{Fault, FaultSite};
use sdd_logic::BitVec;
use sdd_netlist::{Circuit, CombView, Driver, GateKind, NetId};
use sdd_sat::{Cnf, Lit, Outcome, Solver, Var};

/// The verdict of SAT-based generation — complete, no aborts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatOutcome {
    /// A test detecting the fault (one bit per view input).
    Test(BitVec),
    /// The miter is unsatisfiable: the fault is provably untestable.
    Untestable,
}

impl SatOutcome {
    /// The generated test, if any.
    pub fn test(&self) -> Option<&BitVec> {
        match self {
            SatOutcome::Test(t) => Some(t),
            SatOutcome::Untestable => None,
        }
    }
}

/// Generates a test for `fault` by solving the miter, or proves the fault
/// untestable.
///
/// # Example
///
/// ```
/// use sdd_atpg::sat::{generate_sat, SatOutcome};
/// use sdd_fault::FaultUniverse;
/// use sdd_netlist::{library, CombView};
///
/// let c17 = library::c17();
/// let view = CombView::new(&c17);
/// let universe = FaultUniverse::enumerate(&c17);
/// let outcome = generate_sat(&c17, &view, universe.fault(sdd_fault::FaultId(0)));
/// assert!(matches!(outcome, SatOutcome::Test(_)));
/// ```
pub fn generate_sat(circuit: &Circuit, view: &CombView, fault: Fault) -> SatOutcome {
    generate_sat_bounded(circuit, view, fault, None).expect("unbounded SAT always decides")
}

/// Like [`generate_sat`], but gives up after `max_backtracks` solver
/// backtracks (when `Some`), returning `None` — useful as a bounded
/// fallback inside larger flows where a hard miter must not stall ATPG.
pub fn generate_sat_bounded(
    circuit: &Circuit,
    view: &CombView,
    fault: Fault,
    max_backtracks: Option<usize>,
) -> Option<SatOutcome> {
    // The fan-out cone of the fault's effect origin: the only nets whose
    // faulty-machine value can differ.
    let origin = match fault.site {
        FaultSite::Stem(net) => net,
        FaultSite::Branch { gate, .. } => gate,
    };
    let mut in_cone = vec![false; circuit.net_count()];
    in_cone[origin.index()] = true;
    for &net in view.order() {
        if in_cone[net.index()] {
            continue;
        }
        if let Driver::Gate { inputs, .. } = circuit.driver(net) {
            if inputs.iter().any(|&s| in_cone[s.index()]) {
                in_cone[net.index()] = true;
            }
        }
    }
    let observed: Vec<usize> = view
        .outputs()
        .iter()
        .enumerate()
        .filter(|&(_, &o)| in_cone[o.index()])
        .map(|(pos, _)| pos)
        .collect();
    if observed.is_empty() {
        return Some(SatOutcome::Untestable); // no observation point in the cone
    }

    let mut cnf = Cnf::new();
    let good: Vec<Var> = (0..circuit.net_count()).map(|_| cnf.fresh()).collect();
    let mut faulty: HashMap<NetId, Var> = HashMap::new();
    for net in circuit.nets() {
        if in_cone[net.index()] {
            faulty.insert(net, cnf.fresh());
        }
    }

    // Good machine constraints for every gate.
    for &net in view.order() {
        if let Driver::Gate { kind, inputs } = circuit.driver(net) {
            let pins: Vec<Var> = inputs.iter().map(|&s| good[s.index()]).collect();
            encode_gate(&mut cnf, *kind, good[net.index()], &pins);
        }
    }

    // Faulty machine constraints for cone gates.
    let faulty_pin =
        |faulty: &HashMap<NetId, Var>, s: NetId| faulty.get(&s).copied().unwrap_or(good[s.index()]);
    for &net in view.order() {
        if !in_cone[net.index()] {
            continue;
        }
        let out = faulty[&net];
        match fault.site {
            FaultSite::Stem(s) if s == net => {
                // Stuck line: constant in the faulty machine.
                cnf.clause([out.lit(fault.stuck_at)]);
                continue;
            }
            _ => {}
        }
        if let Driver::Gate { kind, inputs } = circuit.driver(net) {
            let mut pins: Vec<Var> = inputs.iter().map(|&s| faulty_pin(&faulty, s)).collect();
            if let FaultSite::Branch { gate, pin } = fault.site {
                if gate == net {
                    // The stuck pin reads a constant: model with a frozen
                    // fresh variable.
                    let frozen = cnf.fresh();
                    cnf.clause([frozen.lit(fault.stuck_at)]);
                    pins[pin as usize] = frozen;
                }
            }
            encode_gate(&mut cnf, *kind, out, &pins);
        }
    }

    // Miter: at least one observed output differs.
    let mut differs = Vec::new();
    for &pos in &observed {
        let o = view.outputs()[pos];
        let g = good[o.index()];
        let f = faulty[&o];
        let d = cnf.fresh();
        encode_xor2(&mut cnf, d, g, f);
        differs.push(d.positive());
    }
    cnf.clause(differs);

    let solver = Solver::new(cnf);
    let outcome = match max_backtracks {
        Some(limit) => solver.solve_with_budget(limit)?,
        None => solver.solve(),
    };
    Some(match outcome {
        Outcome::Unsat => SatOutcome::Untestable,
        Outcome::Sat(model) => SatOutcome::Test(
            view.inputs()
                .iter()
                .map(|&i| model[good[i.index()].index()])
                .collect(),
        ),
    })
}

/// Tseitin constraints for `out ↔ kind(pins)`.
fn encode_gate(cnf: &mut Cnf, kind: GateKind, out: Var, pins: &[Var]) {
    match kind {
        GateKind::Buf => {
            cnf.clause([out.negative(), pins[0].positive()]);
            cnf.clause([out.positive(), pins[0].negative()]);
        }
        GateKind::Not => {
            cnf.clause([out.positive(), pins[0].positive()]);
            cnf.clause([out.negative(), pins[0].negative()]);
        }
        GateKind::And | GateKind::Nand => {
            // t = AND(pins); out = t or ¬t.
            let (this, that) = if kind == GateKind::And {
                (out.negative(), out.positive())
            } else {
                (out.positive(), out.negative())
            };
            for &pin in pins {
                cnf.clause([this, pin.positive()]);
            }
            let mut all: Vec<Lit> = pins.iter().map(|p| p.negative()).collect();
            all.push(that);
            cnf.clause(all);
        }
        GateKind::Or | GateKind::Nor => {
            let (this, that) = if kind == GateKind::Or {
                (out.positive(), out.negative())
            } else {
                (out.negative(), out.positive())
            };
            for &pin in pins {
                cnf.clause([this, pin.negative()]);
            }
            let mut any: Vec<Lit> = pins.iter().map(|p| p.positive()).collect();
            any.push(that);
            cnf.clause(any);
        }
        GateKind::Xor | GateKind::Xnor => {
            // Chain: acc = p0 ⊕ p1 ⊕ …; final equals out (or its inverse).
            let mut acc = pins[0];
            for &pin in &pins[1..] {
                let next = cnf.fresh();
                encode_xor2(cnf, next, acc, pin);
                acc = next;
            }
            if kind == GateKind::Xor {
                cnf.clause([out.negative(), acc.positive()]);
                cnf.clause([out.positive(), acc.negative()]);
            } else {
                cnf.clause([out.positive(), acc.positive()]);
                cnf.clause([out.negative(), acc.negative()]);
            }
        }
    }
}

/// Constraints for `d ↔ a ⊕ b`.
fn encode_xor2(cnf: &mut Cnf, d: Var, a: Var, b: Var) {
    cnf.clause([d.negative(), a.positive(), b.positive()]);
    cnf.clause([d.negative(), a.negative(), b.negative()]);
    cnf.clause([d.positive(), a.negative(), b.positive()]);
    cnf.clause([d.positive(), a.positive(), b.negative()]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Podem, PodemOutcome};
    use sdd_fault::FaultUniverse;
    use sdd_netlist::library::{c17, demo_seq};
    use sdd_netlist::{generator, CircuitBuilder};
    use sdd_sim::reference;

    fn verify(circuit: &Circuit, view: &CombView, fault: Fault, test: &BitVec) {
        let good = reference::good_response(circuit, view, test);
        let bad = reference::faulty_response(circuit, view, fault, test);
        assert_ne!(good, bad, "{} not detected", fault.describe(circuit));
    }

    #[test]
    fn every_c17_fault_gets_a_valid_sat_test() {
        let c = c17();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        for (_, fault) in universe.iter() {
            match generate_sat(&c, &view, fault) {
                SatOutcome::Test(test) => verify(&c, &view, fault, &test),
                SatOutcome::Untestable => panic!("{} is testable", fault.describe(&c)),
            }
        }
    }

    #[test]
    fn sat_proves_redundancy() {
        let mut b = CircuitBuilder::new("red");
        let a = b.input("a");
        let na = b.gate("na", GateKind::Not, vec![a]);
        let y = b.gate("y", GateKind::Or, vec![a, na]);
        b.output(y);
        let c = b.finish().unwrap();
        let view = CombView::new(&c);
        let fault = Fault {
            site: FaultSite::Stem(c.net("y").unwrap()),
            stuck_at: true,
        };
        assert_eq!(generate_sat(&c, &view, fault), SatOutcome::Untestable);
    }

    #[test]
    fn sat_and_podem_agree_on_testability() {
        // On generated circuits, compare the complete SAT verdicts with
        // PODEM under a generous backtrack budget.
        let c = generator::iscas89("s298", 5).unwrap();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let collapsed = universe.collapse_on(&c);
        let mut podem = Podem::new(&c, &view).with_backtrack_limit(50_000);
        let mut rng = sdd_logic::Prng::seed_from_u64(4);
        for &id in collapsed.representatives() {
            let fault = universe.fault(id);
            let sat = generate_sat(&c, &view, fault);
            let podem_outcome = podem.generate(fault, &mut rng);
            match (&sat, &podem_outcome) {
                (SatOutcome::Test(t), PodemOutcome::Test(t2)) => {
                    verify(&c, &view, fault, t);
                    verify(&c, &view, fault, t2);
                }
                (SatOutcome::Untestable, PodemOutcome::Untestable) => {}
                (SatOutcome::Test(t), PodemOutcome::Aborted) => {
                    // SAT out-muscled PODEM; still a valid test.
                    verify(&c, &view, fault, t);
                }
                (sat, podem) => panic!("{}: SAT {sat:?} vs PODEM {podem:?}", fault.describe(&c)),
            }
        }
    }

    #[test]
    fn sequential_demo_faults() {
        let c = demo_seq();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let mut testable = 0;
        for (_, fault) in universe.iter() {
            if let SatOutcome::Test(test) = generate_sat(&c, &view, fault) {
                verify(&c, &view, fault, &test);
                testable += 1;
            }
        }
        assert!(testable > 0);
    }

    #[test]
    fn outcome_test_accessor() {
        let c = c17();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let outcome = generate_sat(&c, &view, universe.fault(sdd_fault::FaultId(3)));
        assert!(outcome.test().is_some());
        assert!(SatOutcome::Untestable.test().is_none());
    }
}
