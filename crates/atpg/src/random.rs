//! Random pattern generation.

use sdd_logic::BitVec;
use sdd_logic::Prng;

/// Generates `count` uniformly random patterns of `width` bits.
///
/// # Example
///
/// ```
/// let mut rng = sdd_logic::Prng::seed_from_u64(1);
/// let patterns = sdd_atpg::random_patterns(8, 10, &mut rng);
/// assert_eq!(patterns.len(), 10);
/// assert!(patterns.iter().all(|p| p.len() == 8));
/// ```
pub fn random_patterns(width: usize, count: usize, rng: &mut Prng) -> Vec<BitVec> {
    (0..count)
        .map(|_| (0..width).map(|_| rng.gen_bool(0.5)).collect())
        .collect()
}

/// Generates `count` *weighted* random patterns: input `i` is `1` with
/// probability `weights[i]`. Weighted random testing (as in weighted-random
/// BIST) lifts detection probabilities for faults that uniform patterns
/// rarely excite — e.g. deep AND trees needing many simultaneous `1`s.
///
/// # Panics
///
/// Panics if `weights.len() != width` or a weight is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// let mut rng = sdd_logic::Prng::seed_from_u64(2);
/// let p = sdd_atpg::weighted_random_patterns(3, 100, &[1.0, 0.0, 0.5], &mut rng);
/// assert!(p.iter().all(|t| t.bit(0) && !t.bit(1)));
/// ```
pub fn weighted_random_patterns(
    width: usize,
    count: usize,
    weights: &[f64],
    rng: &mut Prng,
) -> Vec<BitVec> {
    assert_eq!(weights.len(), width, "one weight per input");
    for &w in weights {
        assert!((0.0..=1.0).contains(&w), "weight {w} outside [0, 1]");
    }
    (0..count)
        .map(|_| weights.iter().map(|&w| rng.gen_bool(w)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = random_patterns(16, 5, &mut Prng::seed_from_u64(9));
        let b = random_patterns(16, 5, &mut Prng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn roughly_balanced_bits() {
        let mut rng = Prng::seed_from_u64(3);
        let patterns = random_patterns(64, 64, &mut rng);
        let ones: usize = patterns.iter().map(|p| p.count_ones()).sum();
        let total = 64 * 64;
        assert!(ones > total / 3 && ones < 2 * total / 3, "{ones}/{total}");
    }

    #[test]
    fn zero_count_and_width_edge_cases() {
        let mut rng = Prng::seed_from_u64(0);
        assert!(random_patterns(8, 0, &mut rng).is_empty());
        let p = random_patterns(0, 2, &mut rng);
        assert_eq!(p.len(), 2);
        assert!(p[0].is_empty());
    }

    #[test]
    fn weighted_patterns_respect_weights() {
        let mut rng = Prng::seed_from_u64(6);
        let patterns = weighted_random_patterns(2, 2000, &[0.9, 0.1], &mut rng);
        let ones0 = patterns.iter().filter(|p| p.bit(0)).count();
        let ones1 = patterns.iter().filter(|p| p.bit(1)).count();
        assert!(ones0 > 1600, "{ones0}");
        assert!(ones1 < 400, "{ones1}");
    }

    #[test]
    #[should_panic(expected = "one weight per input")]
    fn wrong_weight_count_panics() {
        let mut rng = Prng::seed_from_u64(0);
        weighted_random_patterns(3, 1, &[0.5], &mut rng);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_weight_panics() {
        let mut rng = Prng::seed_from_u64(0);
        weighted_random_patterns(1, 1, &[1.5], &mut rng);
    }
}
