//! Automatic test pattern generation.
//!
//! The paper evaluates dictionaries on two test-set types per circuit, both
//! generated here:
//!
//! * **detection test sets** (including *n-detection*: every testable fault
//!   detected by at least `n` distinct tests — the paper uses `n = 10`),
//!   built by [`generate_detection`]: a random phase with fault dropping
//!   followed by deterministic [`Podem`] targeting, then reverse-order
//!   compaction ([`reverse_compact`]);
//! * **diagnostic test sets**, built by [`generate_diagnostic`]: a compact
//!   detection set augmented greedily with tests that split the most
//!   remaining full-dictionary-indistinguished fault pairs, plus a targeted
//!   pair-splitting phase (see `DESIGN.md` §5 for how this relates to the
//!   paper's diagnostic ATPG).
//!
//! # Example
//!
//! ```
//! use sdd_atpg::{generate_detection, AtpgOptions};
//! use sdd_fault::FaultUniverse;
//! use sdd_netlist::{library, CombView};
//!
//! let c17 = library::c17();
//! let view = CombView::new(&c17);
//! let universe = FaultUniverse::enumerate(&c17);
//! let collapsed = universe.collapse_on(&c17);
//! let set = generate_detection(
//!     &c17, &view, &universe, collapsed.representatives(), 1, &AtpgOptions::default(),
//! );
//! assert!(set.untestable.is_empty(), "all c17 faults are testable");
//! assert!(!set.tests.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coverage;
mod diagnostic;
mod podem;
mod random;
pub mod sat;
mod testset;

pub use coverage::CoverageReport;
pub use diagnostic::generate_diagnostic;
pub use podem::{merge_cubes, CubeOutcome, FillMode, Podem, PodemOutcome, TestCube};
pub use random::{random_patterns, weighted_random_patterns};
pub use testset::{generate_detection, reverse_compact, AtpgOptions, GeneratedTestSet};
