//! Diagnostic test-set generation.
//!
//! A diagnostic test set is built to *distinguish fault pairs*, not merely
//! detect faults: its figure of merit is the number of fault pairs left
//! indistinguished by a full dictionary over the set. Generation proceeds in
//! three phases:
//!
//! 1. a compact 1-detection set (detection is a prerequisite for
//!    distinction);
//! 2. greedy augmentation: blocks of random candidates are fault-simulated
//!    and each candidate that refines the current full-dictionary partition
//!    is admitted;
//! 3. targeted pair splitting: for the largest surviving groups, PODEM
//!    (randomized search, random fill) generates tests for member faults,
//!    keeping tests that split their group.
//!
//! For scalability, candidate evaluation only fault-simulates the *active*
//! faults — members of groups that still contain an undistinguished pair.
//! Singleton groups can never split again, so skipping them is lossless,
//! and on large circuits the active set collapses quickly.

use sdd_logic::Prng;

use sdd_fault::{FaultId, FaultUniverse};
use sdd_logic::{BitVec, LANES};
use sdd_netlist::{Circuit, CombView};
use sdd_sim::{Partition, ResponseMatrix};

use crate::{
    generate_detection, random_patterns, AtpgOptions, FillMode, GeneratedTestSet, Podem,
    PodemOutcome,
};

/// How many of the largest indistinguished groups the targeted phase works
/// on. Bounds deterministic effort on very large circuits; random
/// augmentation has usually shrunk the group structure well before this
/// matters.
const MAX_TARGETED_GROUPS: usize = 400;

/// Generates a diagnostic test set for `faults`.
///
/// The returned set detects every testable fault at least once and has been
/// greedily extended until random and targeted candidates stopped improving
/// full-dictionary resolution.
///
/// # Example
///
/// ```
/// use sdd_atpg::{generate_diagnostic, AtpgOptions};
/// use sdd_fault::FaultUniverse;
/// use sdd_netlist::{library, CombView};
///
/// let c17 = library::c17();
/// let view = CombView::new(&c17);
/// let universe = FaultUniverse::enumerate(&c17);
/// let collapsed = universe.collapse_on(&c17);
/// let set = generate_diagnostic(
///     &c17, &view, &universe, collapsed.representatives(), &AtpgOptions::default(),
/// );
/// assert!(!set.tests.is_empty());
/// ```
pub fn generate_diagnostic(
    circuit: &Circuit,
    view: &CombView,
    universe: &FaultUniverse,
    faults: &[FaultId],
    options: &AtpgOptions,
) -> GeneratedTestSet {
    let width = view.inputs().len();
    let mut rng = Prng::seed_from_u64(options.seed ^ 0xD1A6);

    let base = generate_detection(circuit, view, universe, faults, 1, options);
    let mut tests = base.tests;
    let matrix = ResponseMatrix::simulate(circuit, view, universe, faults, &tests);
    let mut partition = matrix.full_partition();

    // ---- Phase 2: greedy random augmentation. ----
    let mut stale = 0;
    for _ in 0..options.max_random_blocks {
        if partition.indistinguished_pairs() == 0 || stale >= options.stale_random_blocks {
            break;
        }
        let candidates = random_patterns(width, LANES, &mut rng);
        let added = admit_refining(
            circuit,
            view,
            universe,
            faults,
            &candidates,
            &mut tests,
            &mut partition,
        );
        if added == 0 {
            stale += 1;
        } else {
            stale = 0;
        }
    }

    // ---- Phase 3: targeted pair splitting on the largest groups. ----
    if partition.indistinguished_pairs() > 0 {
        let mut podem = Podem::new(circuit, view)
            .with_backtrack_limit(options.backtrack_limit)
            .with_fill(FillMode::Random)
            .with_randomized_search(true);
        let mut groups: Vec<Vec<usize>> = partition
            .groups()
            .into_iter()
            .filter(|g| g.len() >= 2)
            .collect();
        groups.sort_by_key(|g| std::cmp::Reverse(g.len()));
        groups.truncate(MAX_TARGETED_GROUPS);
        let mut candidates: Vec<BitVec> = Vec::new();
        for group in groups {
            // Try to split the group via tests for its first two members.
            for &member in group.iter().take(2) {
                let fault = universe.fault(faults[member]);
                for _ in 0..options.attempts_per_deficit {
                    if let PodemOutcome::Test(test) = podem.generate(fault, &mut rng) {
                        candidates.push(test);
                    }
                }
            }
            if candidates.len() >= LANES {
                admit_refining(
                    circuit,
                    view,
                    universe,
                    faults,
                    &candidates,
                    &mut tests,
                    &mut partition,
                );
                candidates.clear();
            }
        }
        if !candidates.is_empty() {
            admit_refining(
                circuit,
                view,
                universe,
                faults,
                &candidates,
                &mut tests,
                &mut partition,
            );
        }
    }

    GeneratedTestSet {
        tests,
        untestable: base.untestable,
        aborted: base.aborted,
    }
}

/// Simulates candidate tests over the currently-active faults and admits
/// each candidate that strictly refines the partition (i.e. newly
/// distinguishes at least one fault pair). Returns the number admitted.
fn admit_refining(
    circuit: &Circuit,
    view: &CombView,
    universe: &FaultUniverse,
    faults: &[FaultId],
    candidates: &[BitVec],
    tests: &mut Vec<BitVec>,
    partition: &mut Partition,
) -> usize {
    if candidates.is_empty() {
        return 0;
    }
    // Active faults: members of groups that can still split.
    let sizes = partition.group_sizes();
    let active: Vec<usize> = (0..faults.len())
        .filter(|&f| sizes[partition.group_of(f) as usize] >= 2)
        .collect();
    if active.is_empty() {
        return 0;
    }
    let active_ids: Vec<FaultId> = active.iter().map(|&f| faults[f]).collect();
    let matrix = ResponseMatrix::simulate(circuit, view, universe, &active_ids, candidates);

    let mut added = 0;
    let mut row = vec![0u32; faults.len()];
    for (lane, candidate) in candidates.iter().enumerate() {
        // Expand the active-fault classes into a full-width label row;
        // inactive faults are singletons, for which any label is a no-op.
        row.iter_mut().for_each(|slot| *slot = 0);
        for (pos, &fault) in active.iter().enumerate() {
            row[fault] = matrix.class(lane, pos);
        }
        let before = partition.group_count();
        let mut refined = partition.clone();
        refined.refine(&row);
        if refined.group_count() > before {
            *partition = refined;
            tests.push(candidate.clone());
            added += 1;
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_netlist::{generator, library};

    #[test]
    fn diagnostic_set_reaches_exhaustive_resolution_on_c17() {
        let c = library::c17();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let collapsed = universe.collapse_on(&c);
        let faults = collapsed.representatives();
        let set = generate_diagnostic(&c, &view, &universe, faults, &AtpgOptions::default());

        // Exhaustive bound: what 32 patterns can distinguish.
        let all: Vec<BitVec> = (0u32..32)
            .map(|w| (0..5).map(|i| w >> i & 1 == 1).collect())
            .collect();
        let bound = ResponseMatrix::simulate(&c, &view, &universe, faults, &all)
            .full_partition()
            .indistinguished_pairs();
        let achieved = ResponseMatrix::simulate(&c, &view, &universe, faults, &set.tests)
            .full_partition()
            .indistinguished_pairs();
        assert_eq!(
            achieved, bound,
            "diagnostic set must reach the exhaustive bound on c17"
        );
    }

    #[test]
    fn diagnostic_resolution_beats_plain_detection() {
        let c = generator::iscas89("s344", 3).unwrap();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let collapsed = universe.collapse_on(&c);
        let faults = collapsed.representatives();
        let opts = AtpgOptions::default();
        let detect = generate_detection(&c, &view, &universe, faults, 1, &opts);
        let diag = generate_diagnostic(&c, &view, &universe, faults, &opts);
        let pairs = |tests: &[BitVec]| {
            ResponseMatrix::simulate(&c, &view, &universe, faults, tests)
                .full_partition()
                .indistinguished_pairs()
        };
        assert!(
            pairs(&diag.tests) <= pairs(&detect.tests),
            "diagnostic set can only improve resolution"
        );
        assert!(
            pairs(&diag.tests) < pairs(&detect.tests),
            "on a 300-gate circuit augmentation should find something to split"
        );
    }

    #[test]
    fn still_detects_every_testable_fault() {
        let c = generator::iscas89("s208", 6).unwrap();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let collapsed = universe.collapse_on(&c);
        let faults = collapsed.representatives();
        let set = generate_diagnostic(&c, &view, &universe, faults, &AtpgOptions::default());
        let matrix = ResponseMatrix::simulate(&c, &view, &universe, faults, &set.tests);
        let counts = matrix.detection_counts();
        for (pos, &id) in faults.iter().enumerate() {
            if set.untestable.contains(&id) || set.aborted.contains(&id) {
                continue;
            }
            assert!(counts[pos] > 0, "{}", universe.fault(id).describe(&c));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let c = library::c17();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let collapsed = universe.collapse_on(&c);
        let faults = collapsed.representatives();
        let opts = AtpgOptions::default();
        let a = generate_diagnostic(&c, &view, &universe, faults, &opts);
        let b = generate_diagnostic(&c, &view, &universe, faults, &opts);
        assert_eq!(a, b);
    }
}
