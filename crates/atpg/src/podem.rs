//! PODEM: path-oriented decision making, the classic deterministic test
//! generation algorithm (Goel, 1981), over the five-valued D-algebra.
//!
//! PODEM searches the space of primary-input assignments directly: it picks
//! an *objective* (activate the fault, then drive its effect toward an
//! output), *backtraces* the objective to an unassigned input, assigns it,
//! implies by forward simulation, and backtracks on conflicts. The search is
//! complete: with an unlimited backtrack budget, `Untestable` is a proof of
//! redundancy.

use sdd_logic::Prng;

use sdd_fault::{Fault, FaultSite};
use sdd_logic::{BitVec, V5};
use sdd_netlist::{Circuit, CombView, Driver, GateKind, NetId};

/// How unassigned inputs are filled once a test is found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FillMode {
    /// Fill with `0` — deterministic, reproducible tests.
    #[default]
    Zero,
    /// Fill randomly — raises the chance of fortuitous extra detections,
    /// and lets repeated calls produce *different* tests for the same fault
    /// (the lever n-detection generation relies on).
    Random,
}

/// The outcome of one PODEM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodemOutcome {
    /// A test detecting the fault (one bit per view input).
    Test(BitVec),
    /// The decision tree was exhausted: the fault is untestable (redundant).
    Untestable,
    /// The backtrack limit was hit before a verdict.
    Aborted,
}

impl PodemOutcome {
    /// The generated test, if any.
    pub fn test(&self) -> Option<&BitVec> {
        match self {
            PodemOutcome::Test(t) => Some(t),
            _ => None,
        }
    }
}

/// A reusable PODEM test generator bound to one circuit view.
///
/// # Example
///
/// ```
/// use sdd_atpg::{Podem, PodemOutcome};
/// use sdd_fault::FaultUniverse;
/// use sdd_netlist::{library, CombView};
///
/// let c17 = library::c17();
/// let view = CombView::new(&c17);
/// let universe = FaultUniverse::enumerate(&c17);
/// let mut podem = Podem::new(&c17, &view);
/// let mut rng = sdd_logic::Prng::seed_from_u64(0);
/// let fault = universe.fault(sdd_fault::FaultId(0));
/// match podem.generate(fault, &mut rng) {
///     PodemOutcome::Test(test) => assert_eq!(test.len(), 5),
///     other => panic!("c17 faults are testable, got {other:?}"),
/// }
/// ```
#[derive(Debug)]
pub struct Podem<'a> {
    circuit: &'a Circuit,
    view: &'a CombView,
    backtrack_limit: usize,
    fill: FillMode,
    randomize_backtrace: bool,
    value: Vec<V5>,
    reach: Vec<bool>,
}

#[derive(Debug)]
struct Decision {
    input: usize,
    value: bool,
    flipped: bool,
}

impl<'a> Podem<'a> {
    /// Creates a generator with the default backtrack limit (`4096`) and
    /// zero fill.
    pub fn new(circuit: &'a Circuit, view: &'a CombView) -> Self {
        Self {
            circuit,
            view,
            backtrack_limit: 4096,
            fill: FillMode::Zero,
            randomize_backtrace: false,
            value: vec![V5::X; circuit.net_count()],
            reach: vec![false; circuit.net_count()],
        }
    }

    /// Sets the backtrack budget after which a run gives up as
    /// [`PodemOutcome::Aborted`].
    pub fn with_backtrack_limit(mut self, limit: usize) -> Self {
        self.backtrack_limit = limit;
        self
    }

    /// Sets how don't-care inputs are filled in generated tests.
    pub fn with_fill(mut self, fill: FillMode) -> Self {
        self.fill = fill;
        self
    }

    /// Randomizes objective and backtrace choices. Combined with
    /// [`FillMode::Random`], repeated runs on the same fault explore
    /// different tests.
    pub fn with_randomized_search(mut self, on: bool) -> Self {
        self.randomize_backtrace = on;
        self
    }

    /// Attempts to generate a test for `fault`.
    pub fn generate(&mut self, fault: Fault, rng: &mut Prng) -> PodemOutcome {
        match self.generate_cube(fault, rng) {
            CubeOutcome::Cube(cube) => PodemOutcome::Test(self.fill_cube(&cube, rng)),
            CubeOutcome::Untestable => PodemOutcome::Untestable,
            CubeOutcome::Aborted => PodemOutcome::Aborted,
        }
    }

    /// Attempts to generate a *test cube* for `fault`: the partial input
    /// assignment PODEM actually needed, with don't-cares left unassigned.
    /// Cubes feed static compaction ([`merge_cubes`]): compatible cubes
    /// merge into one pattern that detects both targets.
    pub fn generate_cube(&mut self, fault: Fault, rng: &mut Prng) -> CubeOutcome {
        let input_count = self.view.inputs().len();
        let mut assignment: Vec<Option<bool>> = vec![None; input_count];
        let mut decisions: Vec<Decision> = Vec::new();
        let mut backtracks = 0usize;

        loop {
            self.simulate(fault, &assignment);
            if self.detected_at_output() {
                return CubeOutcome::Cube(TestCube(assignment));
            }
            let feasible = self.feasible(fault);
            let objective = if feasible {
                self.objective(fault, rng)
            } else {
                None
            };
            match objective {
                Some((net, target)) => {
                    let (input, value) = self.backtrace(net, target, rng);
                    if assignment[input].is_some() {
                        // Defensive: should not happen; treat as conflict.
                        if !Self::backtrack(&mut decisions, &mut assignment) {
                            return CubeOutcome::Untestable;
                        }
                        backtracks += 1;
                        if backtracks > self.backtrack_limit {
                            return CubeOutcome::Aborted;
                        }
                        continue;
                    }
                    assignment[input] = Some(value);
                    decisions.push(Decision {
                        input,
                        value,
                        flipped: false,
                    });
                }
                None => {
                    // Conflict (or no live objective): backtrack.
                    if !Self::backtrack(&mut decisions, &mut assignment) {
                        return CubeOutcome::Untestable;
                    }
                    backtracks += 1;
                    if backtracks > self.backtrack_limit {
                        return CubeOutcome::Aborted;
                    }
                }
            }
        }
    }

    /// Pops flipped decisions, flips the deepest unflipped one. Returns
    /// `false` when the tree is exhausted.
    fn backtrack(decisions: &mut Vec<Decision>, assignment: &mut [Option<bool>]) -> bool {
        while let Some(mut d) = decisions.pop() {
            assignment[d.input] = None;
            if !d.flipped {
                d.value = !d.value;
                d.flipped = true;
                assignment[d.input] = Some(d.value);
                decisions.push(d);
                return true;
            }
        }
        false
    }

    /// Five-valued forward simulation with `fault` injected.
    fn simulate(&mut self, fault: Fault, assignment: &[Option<bool>]) {
        for &net in self.view.order() {
            let mut v = match self.circuit.driver(net) {
                Driver::Input | Driver::Dff { .. } => {
                    let pos = self.view.input_position(net).expect("source is an input");
                    match assignment[pos] {
                        Some(bit) => V5::from_bool(bit),
                        None => V5::X,
                    }
                }
                Driver::Gate { kind, inputs } => {
                    let mut acc: Option<V5> = None;
                    for (pin, &source) in inputs.iter().enumerate() {
                        let pv = self.pin_value(fault, net, pin, source);
                        acc = Some(match acc {
                            None => pv,
                            Some(a) => apply(*kind, a, pv),
                        });
                    }
                    let raw = acc.expect("gates have inputs");
                    if kind.inverts() {
                        raw.not()
                    } else {
                        raw
                    }
                }
            };
            if let FaultSite::Stem(s) = fault.site {
                if s == net {
                    v = force(v, fault.stuck_at);
                }
            }
            self.value[net.index()] = v;
        }
    }

    /// The composite value a gate pin sees, honoring a branch fault.
    fn pin_value(&self, fault: Fault, gate: NetId, pin: usize, source: NetId) -> V5 {
        let wire = self.value[source.index()];
        match fault.site {
            FaultSite::Branch { gate: fg, pin: fp } if fg == gate && fp as usize == pin => {
                force(wire, fault.stuck_at)
            }
            _ => wire,
        }
    }

    fn detected_at_output(&self) -> bool {
        self.view
            .outputs()
            .iter()
            .any(|&o| self.value[o.index()].is_fault_effect())
    }

    /// The composite value at the fault site line.
    fn site_value(&self, fault: Fault) -> V5 {
        match fault.site {
            FaultSite::Stem(s) => self.value[s.index()],
            FaultSite::Branch { gate, pin } => {
                let source = self.circuit.driver(gate).fanin()[pin as usize];
                self.pin_value(fault, gate, pin as usize, source)
            }
        }
    }

    /// Can the current partial assignment still be extended to a test?
    fn feasible(&mut self, fault: Fault) -> bool {
        let site = self.site_value(fault);
        if site.is_fault_effect() {
            self.compute_reach();
            self.live_frontier(fault).next().is_some()
        } else {
            // Not activated: feasible only while the site's good value is
            // still unknown.
            !site.is_assigned()
        }
    }

    /// Marks nets with X value from which an observed output is reachable
    /// through X-valued nets (the classic X-path check).
    fn compute_reach(&mut self) {
        self.reach.iter_mut().for_each(|r| *r = false);
        for &o in self.view.outputs() {
            if self.value[o.index()] == V5::X {
                self.reach[o.index()] = true;
            }
        }
        // Reverse topological sweep: when a net is visited, every sink gate
        // has already been finalized, so propagating reach from gates to
        // their X-valued inputs is one O(E) pass.
        for &net in self.view.order().iter().rev() {
            if self.reach[net.index()] {
                if let Driver::Gate { inputs, .. } = self.circuit.driver(net) {
                    for &source in inputs {
                        if self.value[source.index()] == V5::X {
                            self.reach[source.index()] = true;
                        }
                    }
                }
            }
        }
    }

    /// Gates whose output is X-and-reaching and that have a fault effect on
    /// some pin: the live D-frontier.
    fn live_frontier<'s>(&'s self, fault: Fault) -> impl Iterator<Item = NetId> + 's {
        self.view.order().iter().copied().filter(move |&net| {
            if !self.reach[net.index()] || self.value[net.index()] != V5::X {
                return false;
            }
            match self.circuit.driver(net) {
                Driver::Gate { inputs, .. } => inputs
                    .iter()
                    .enumerate()
                    .any(|(pin, &s)| self.pin_value(fault, net, pin, s).is_fault_effect()),
                _ => false,
            }
        })
    }

    /// Picks the next objective `(net, good-machine target value)`.
    fn objective(&mut self, fault: Fault, rng: &mut Prng) -> Option<(NetId, bool)> {
        let site = self.site_value(fault);
        if !site.is_fault_effect() {
            // Activation objective: drive the site's good value opposite the
            // stuck value.
            let net = match fault.site {
                FaultSite::Stem(s) => s,
                FaultSite::Branch { gate, pin } => self.circuit.driver(gate).fanin()[pin as usize],
            };
            return Some((net, !fault.stuck_at));
        }
        // Propagation objective: pick a live D-frontier gate, then an
        // X pin to set to the non-controlling value.
        let frontier: Vec<NetId> = self.live_frontier(fault).collect();
        let gate = if frontier.is_empty() {
            return None;
        } else if self.randomize_backtrace {
            frontier[rng.gen_range(0..frontier.len())]
        } else {
            frontier[0]
        };
        if let Driver::Gate { kind, inputs } = self.circuit.driver(gate) {
            let target = kind.controlling_value().map(|c| !c).unwrap_or(false);
            let candidates: Vec<NetId> = inputs
                .iter()
                .enumerate()
                .filter(|&(pin, &s)| self.pin_value(fault, gate, pin, s) == V5::X)
                .map(|(_, &s)| s)
                .collect();
            let pick = match candidates.len() {
                0 => return None,
                _ if self.randomize_backtrace => candidates[rng.gen_range(0..candidates.len())],
                _ => candidates[0],
            };
            return Some((pick, target));
        }
        None
    }

    /// Walks an objective back to an unassigned input.
    fn backtrace(&self, mut net: NetId, mut target: bool, rng: &mut Prng) -> (usize, bool) {
        loop {
            if let Some(pos) = self.view.input_position(net) {
                return (pos, target);
            }
            match self.circuit.driver(net) {
                Driver::Gate { kind, inputs } => {
                    let pre = target ^ kind.inverts();
                    // Prefer pins whose value is still unknown.
                    let unknown: Vec<NetId> = inputs
                        .iter()
                        .copied()
                        .filter(|&s| !self.value[s.index()].is_assigned())
                        .collect();
                    let unknown: Vec<NetId> = if unknown.is_empty() {
                        // Degenerate (reconvergence artifacts): fall back to
                        // any pin to keep the walk terminating.
                        inputs.clone()
                    } else {
                        unknown
                    };
                    let pick = if self.randomize_backtrace && unknown.len() > 1 {
                        unknown[rng.gen_range(0..unknown.len())]
                    } else {
                        unknown[0]
                    };
                    target = match kind {
                        GateKind::Not | GateKind::Buf => pre,
                        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                            let c = kind.controlling_value().expect("has controlling value");
                            if pre == c {
                                c
                            } else {
                                !c
                            }
                        }
                        GateKind::Xor | GateKind::Xnor => {
                            // Parity of the known other pins decides the
                            // residue this pin must contribute.
                            let mut parity = pre;
                            for &other in inputs {
                                if other != pick {
                                    if let Some(g) = self.value[other.index()].good() {
                                        parity ^= g;
                                    }
                                }
                            }
                            parity
                        }
                    };
                    net = pick;
                }
                Driver::Input | Driver::Dff { .. } => {
                    unreachable!("inputs are handled by input_position")
                }
            }
        }
    }

    /// Fills a cube's don't-cares per the configured [`FillMode`].
    pub fn fill_cube(&self, cube: &TestCube, rng: &mut Prng) -> BitVec {
        cube.0
            .iter()
            .map(|a| match (a, self.fill) {
                (Some(bit), _) => *bit,
                (None, FillMode::Zero) => false,
                (None, FillMode::Random) => rng.gen_bool(0.5),
            })
            .collect()
    }
}

/// A partial input assignment that detects a fault: `None` entries are
/// don't-cares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCube(pub Vec<Option<bool>>);

impl TestCube {
    /// Number of inputs (assigned or not).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for a zero-width cube.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of assigned (care) bits.
    pub fn care_bits(&self) -> usize {
        self.0.iter().filter(|a| a.is_some()).count()
    }

    /// Two cubes are compatible when no input is assigned opposite values.
    pub fn compatible(&self, other: &TestCube) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| match (a, b) {
            (Some(x), Some(y)) => x == y,
            _ => true,
        })
    }

    /// The union of two compatible cubes.
    ///
    /// # Panics
    ///
    /// Panics if the cubes are incompatible or differ in width.
    pub fn merge(&self, other: &TestCube) -> TestCube {
        assert_eq!(self.len(), other.len(), "cube width mismatch");
        assert!(self.compatible(other), "merging incompatible cubes");
        TestCube(self.0.iter().zip(&other.0).map(|(a, b)| a.or(*b)).collect())
    }

    /// Fills don't-cares with `0` (deterministic).
    pub fn fill_zero(&self) -> BitVec {
        self.0.iter().map(|a| a.unwrap_or(false)).collect()
    }
}

/// The outcome of cube-level PODEM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CubeOutcome {
    /// A detecting partial assignment.
    Cube(TestCube),
    /// Proven untestable.
    Untestable,
    /// Backtrack limit hit.
    Aborted,
}

impl CubeOutcome {
    /// The cube, if one was found.
    pub fn cube(&self) -> Option<&TestCube> {
        match self {
            CubeOutcome::Cube(c) => Some(c),
            _ => None,
        }
    }
}

/// Static compaction by greedy cube merging: each cube is merged into the
/// first compatible accumulated cube, so compatible targets share one test.
/// Returns filled (zero-fill) patterns.
///
/// # Example
///
/// ```
/// use sdd_atpg::{merge_cubes, Podem};
/// use sdd_fault::FaultUniverse;
/// use sdd_netlist::{library, CombView};
///
/// let c17 = library::c17();
/// let view = CombView::new(&c17);
/// let universe = FaultUniverse::enumerate(&c17);
/// let mut podem = Podem::new(&c17, &view);
/// let mut rng = sdd_logic::Prng::seed_from_u64(0);
/// let cubes: Vec<_> = universe
///     .iter()
///     .filter_map(|(_, f)| podem.generate_cube(f, &mut rng).cube().cloned())
///     .collect();
/// let tests = merge_cubes(&cubes);
/// assert!(tests.len() < cubes.len(), "merging must compact");
/// ```
pub fn merge_cubes(cubes: &[TestCube]) -> Vec<BitVec> {
    let mut merged: Vec<TestCube> = Vec::new();
    for cube in cubes {
        match merged.iter_mut().find(|m| m.compatible(cube)) {
            Some(host) => *host = host.merge(cube),
            None => merged.push(cube.clone()),
        }
    }
    merged.iter().map(TestCube::fill_zero).collect()
}

/// Applies the two-input composite-value operation of a gate kind, ignoring
/// its output inversion (applied once at the end).
fn apply(kind: GateKind, a: V5, b: V5) -> V5 {
    match kind {
        GateKind::And | GateKind::Nand => a.and(b),
        GateKind::Or | GateKind::Nor => a.or(b),
        GateKind::Xor | GateKind::Xnor => a.xor(b),
        GateKind::Not | GateKind::Buf => a,
    }
}

/// Forces the faulty-machine component of `wire` to `stuck_at`.
fn force(wire: V5, stuck_at: bool) -> V5 {
    match wire.good() {
        Some(good) => V5::from_pair(good, stuck_at),
        None => V5::X,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_fault::FaultUniverse;
    use sdd_netlist::library::{c17, demo_seq};
    use sdd_netlist::{generator, CircuitBuilder};
    use sdd_sim::reference;

    fn rng() -> Prng {
        Prng::seed_from_u64(0xA7)
    }

    fn verify_test(circuit: &Circuit, view: &CombView, fault: Fault, test: &BitVec) {
        let good = reference::good_response(circuit, view, test);
        let bad = reference::faulty_response(circuit, view, fault, test);
        assert_ne!(
            good,
            bad,
            "{} not detected by {test}",
            fault.describe(circuit)
        );
    }

    #[test]
    fn finds_tests_for_every_c17_fault() {
        let c = c17();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let mut podem = Podem::new(&c, &view);
        let mut rng = rng();
        for (_, fault) in universe.iter() {
            match podem.generate(fault, &mut rng) {
                PodemOutcome::Test(test) => verify_test(&c, &view, fault, &test),
                other => panic!("{}: {other:?}", fault.describe(&c)),
            }
        }
    }

    #[test]
    fn finds_tests_for_sequential_circuit() {
        let c = demo_seq();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let mut podem = Podem::new(&c, &view);
        let mut rng = rng();
        for (_, fault) in universe.iter() {
            if let PodemOutcome::Test(test) = podem.generate(fault, &mut rng) {
                verify_test(&c, &view, fault, &test);
            }
            // demo_seq may contain redundant faults; Untestable is fine,
            // but Aborted with the default budget would be suspicious.
            assert!(!matches!(
                podem.generate(fault, &mut rng),
                PodemOutcome::Aborted
            ));
        }
    }

    #[test]
    fn proves_redundant_fault_untestable() {
        // y = OR(a, NOT(a)) is constantly 1; y s-a-1 is undetectable.
        let mut b = CircuitBuilder::new("red");
        let a = b.input("a");
        let na = b.gate("na", sdd_netlist::GateKind::Not, vec![a]);
        let y = b.gate("y", sdd_netlist::GateKind::Or, vec![a, na]);
        b.output(y);
        let c = b.finish().unwrap();
        let view = CombView::new(&c);
        let fault = Fault {
            site: FaultSite::Stem(c.net("y").unwrap()),
            stuck_at: true,
        };
        let mut podem = Podem::new(&c, &view);
        assert_eq!(podem.generate(fault, &mut rng()), PodemOutcome::Untestable);
        // The complementary fault is testable.
        let fault0 = Fault {
            site: FaultSite::Stem(c.net("y").unwrap()),
            stuck_at: false,
        };
        assert!(matches!(
            podem.generate(fault0, &mut rng()),
            PodemOutcome::Test(_)
        ));
    }

    #[test]
    fn every_generated_test_is_valid_on_generated_circuit() {
        let c = generator::iscas89("s298", 5).unwrap();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let collapsed = universe.collapse_on(&c);
        let mut podem = Podem::new(&c, &view).with_backtrack_limit(2000);
        let mut rng = rng();
        let mut tested = 0;
        let mut untestable = 0;
        let mut aborted = 0;
        for &id in collapsed.representatives() {
            let fault = universe.fault(id);
            match podem.generate(fault, &mut rng) {
                PodemOutcome::Test(test) => {
                    verify_test(&c, &view, fault, &test);
                    tested += 1;
                }
                PodemOutcome::Untestable => untestable += 1,
                PodemOutcome::Aborted => aborted += 1,
            }
        }
        assert!(tested > 0);
        // A healthy generated circuit is mostly testable.
        assert!(
            tested * 10 >= (tested + untestable + aborted) * 8,
            "coverage too low: {tested} tested, {untestable} untestable, {aborted} aborted"
        );
    }

    #[test]
    fn randomized_search_produces_diverse_tests() {
        let c = c17();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let fault = universe.fault(sdd_fault::FaultId(0));
        let mut podem = Podem::new(&c, &view)
            .with_fill(FillMode::Random)
            .with_randomized_search(true);
        let mut rng = rng();
        let tests: std::collections::HashSet<String> = (0..24)
            .filter_map(|_| {
                podem
                    .generate(fault, &mut rng)
                    .test()
                    .map(|t| t.to_string())
            })
            .collect();
        assert!(tests.len() > 1, "random search should vary the tests");
    }

    #[test]
    fn zero_fill_is_deterministic() {
        let c = c17();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let fault = universe.fault(sdd_fault::FaultId(2));
        let mut podem = Podem::new(&c, &view);
        let a = podem.generate(fault, &mut rng());
        let b = podem.generate(fault, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn cubes_detect_their_faults_under_any_fill() {
        let c = c17();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let mut podem = Podem::new(&c, &view);
        let mut r = rng();
        for (_, fault) in universe.iter() {
            let cube = match podem.generate_cube(fault, &mut r) {
                CubeOutcome::Cube(cube) => cube,
                other => panic!("{other:?}"),
            };
            assert!(cube.care_bits() <= cube.len());
            // The cube detects under zero-fill AND under all-ones fill.
            verify_test(&c, &view, fault, &cube.fill_zero());
            let ones: BitVec = cube.0.iter().map(|a| a.unwrap_or(true)).collect();
            verify_test(&c, &view, fault, &ones);
        }
    }

    #[test]
    fn cube_merging_compacts_and_preserves_detection() {
        let c = c17();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let mut podem = Podem::new(&c, &view);
        let mut r = rng();
        let pairs: Vec<(Fault, TestCube)> = universe
            .iter()
            .filter_map(|(_, f)| {
                podem
                    .generate_cube(f, &mut r)
                    .cube()
                    .cloned()
                    .map(|cube| (f, cube))
            })
            .collect();
        let cubes: Vec<TestCube> = pairs.iter().map(|(_, c)| c.clone()).collect();
        let tests = merge_cubes(&cubes);
        assert!(
            tests.len() < cubes.len(),
            "{} !< {}",
            tests.len(),
            cubes.len()
        );
        // Every fault is detected by at least one merged test.
        for (fault, _) in &pairs {
            assert!(
                tests.iter().any(|t| {
                    reference::faulty_response(&c, &view, *fault, t)
                        != reference::good_response(&c, &view, t)
                }),
                "{} lost by merging",
                fault.describe(&c)
            );
        }
    }

    #[test]
    fn cube_compatibility_and_merge_rules() {
        let a = TestCube(vec![Some(true), None, Some(false)]);
        let b = TestCube(vec![None, Some(true), Some(false)]);
        let c = TestCube(vec![Some(false), None, None]);
        assert!(a.compatible(&b));
        assert!(!a.compatible(&c));
        let ab = a.merge(&b);
        assert_eq!(ab.0, vec![Some(true), Some(true), Some(false)]);
        assert_eq!(ab.care_bits(), 3);
        assert_eq!(a.fill_zero().to_string(), "100");
        assert!(!a.is_empty());
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn merging_incompatible_cubes_panics() {
        let a = TestCube(vec![Some(true)]);
        let b = TestCube(vec![Some(false)]);
        a.merge(&b);
    }

    #[test]
    fn tiny_backtrack_limit_aborts_on_hard_fault() {
        // A wide XOR tree makes naive PODEM backtrack: with limit 0 we may
        // still succeed on easy faults, so assert only that the call
        // terminates and returns a legal outcome.
        let c = generator::iscas89("s208", 2).unwrap();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let mut podem = Podem::new(&c, &view).with_backtrack_limit(0);
        let mut r = rng();
        for (id, fault) in universe.iter().take(40) {
            let outcome = podem.generate(fault, &mut r);
            if let PodemOutcome::Test(t) = &outcome {
                verify_test(&c, &view, fault, t);
            }
            let _ = id;
        }
    }
}
