//! Fault-coverage accounting for generated test sets.

use std::fmt;

use sdd_fault::{FaultId, FaultUniverse};
use sdd_netlist::{Circuit, CombView};
use sdd_sim::ResponseMatrix;

use crate::GeneratedTestSet;

/// Coverage statistics of a test set over a fault list.
///
/// *Fault coverage* is detected / total; *test efficiency* (ATPG
/// effectiveness) excludes provably untestable faults from the
/// denominator, which is how ATPG tools usually report.
///
/// # Example
///
/// ```
/// use sdd_atpg::{generate_detection, AtpgOptions, CoverageReport};
/// use sdd_fault::FaultUniverse;
/// use sdd_netlist::{library, CombView};
///
/// let c17 = library::c17();
/// let view = CombView::new(&c17);
/// let universe = FaultUniverse::enumerate(&c17);
/// let collapsed = universe.collapse_on(&c17);
/// let set = generate_detection(
///     &c17, &view, &universe, collapsed.representatives(), 1, &AtpgOptions::default(),
/// );
/// let report = CoverageReport::measure(&c17, &view, &universe, collapsed.representatives(), &set);
/// assert_eq!(report.detected, report.total_faults); // c17 is fully testable
/// assert_eq!(report.fault_coverage(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    /// Total faults targeted.
    pub total_faults: usize,
    /// Faults detected by at least one test.
    pub detected: usize,
    /// Faults proven untestable.
    pub untestable: usize,
    /// Faults abandoned without a verdict.
    pub aborted: usize,
    /// Number of tests in the set.
    pub tests: usize,
    /// Average detections per detected fault (the n-detect profile).
    pub mean_detections: f64,
}

impl CoverageReport {
    /// Fault-simulates `set` and tallies coverage.
    pub fn measure(
        circuit: &Circuit,
        view: &CombView,
        universe: &FaultUniverse,
        faults: &[FaultId],
        set: &GeneratedTestSet,
    ) -> Self {
        let matrix = ResponseMatrix::simulate(circuit, view, universe, faults, &set.tests);
        Self::from_matrix(&matrix, set)
    }

    /// Tallies coverage from an existing response matrix (must cover the
    /// same faults and tests as `set`).
    pub fn from_matrix(matrix: &ResponseMatrix, set: &GeneratedTestSet) -> Self {
        let counts = matrix.detection_counts();
        let detected = counts.iter().filter(|&&c| c > 0).count();
        let total_detections: u64 = counts.iter().map(|&c| c as u64).sum();
        Self {
            total_faults: matrix.fault_count(),
            detected,
            untestable: set.untestable.len(),
            aborted: set.aborted.len(),
            tests: set.tests.len(),
            mean_detections: if detected == 0 {
                0.0
            } else {
                total_detections as f64 / detected as f64
            },
        }
    }

    /// Detected / total.
    pub fn fault_coverage(&self) -> f64 {
        if self.total_faults == 0 {
            1.0
        } else {
            self.detected as f64 / self.total_faults as f64
        }
    }

    /// Detected / (total − proven untestable): the ATPG-effectiveness
    /// figure, 1.0 when every verdict is definitive.
    pub fn test_efficiency(&self) -> f64 {
        let target = self.total_faults - self.untestable;
        if target == 0 {
            1.0
        } else {
            self.detected as f64 / target as f64
        }
    }

    /// Verifies the bookkeeping is consistent (counts partition the fault
    /// list up to fortuitous detection of aborted faults).
    pub fn is_consistent(&self) -> bool {
        self.detected + self.untestable <= self.total_faults + self.aborted
    }
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tests: {}/{} faults detected ({:.2}% coverage, {:.2}% efficiency, \
             {} untestable, {} aborted, {:.1} detections/fault)",
            self.tests,
            self.detected,
            self.total_faults,
            100.0 * self.fault_coverage(),
            100.0 * self.test_efficiency(),
            self.untestable,
            self.aborted,
            self.mean_detections,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_detection, AtpgOptions};
    use sdd_netlist::library::c17;

    fn c17_report(n: u32) -> CoverageReport {
        let c = c17();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let collapsed = universe.collapse_on(&c);
        let set = generate_detection(
            &c,
            &view,
            &universe,
            collapsed.representatives(),
            n,
            &AtpgOptions::default(),
        );
        CoverageReport::measure(&c, &view, &universe, collapsed.representatives(), &set)
    }

    #[test]
    fn c17_is_fully_covered() {
        let r = c17_report(1);
        assert_eq!(r.total_faults, 22);
        assert_eq!(r.detected, 22);
        assert_eq!(r.fault_coverage(), 1.0);
        assert_eq!(r.test_efficiency(), 1.0);
        assert!(r.is_consistent());
        assert!(r.mean_detections >= 1.0);
    }

    #[test]
    fn ten_detect_raises_mean_detections() {
        let one = c17_report(1);
        let ten = c17_report(10);
        assert!(ten.mean_detections > one.mean_detections);
        assert!(ten.tests > one.tests);
    }

    #[test]
    fn display_is_informative() {
        let r = c17_report(1);
        let line = r.to_string();
        assert!(line.contains("22/22"), "{line}");
        assert!(line.contains("100.00%"), "{line}");
    }
}
