//! Seeded corpus synthesis — the workload generator behind `volume_bench`,
//! the examples, and the smoke tests.
//!
//! A synthetic corpus injects a few *systematic* faults (each owning a
//! configured share of the devices) into a background of uniformly random
//! faults, then pushes every device's responses through a seeded
//! [`CorruptionModel`] sweep so the corpus looks like real tester datalogs:
//! masked bits, flipped bits, and a mix of the text and JSONL line shapes.
//! Everything is a pure function of the seed.

use std::io::{self, Write};

use sdd_logic::{MaskedBitVec, Prng};
use sdd_sim::{CorruptionModel, ResponseMatrix};

/// What to synthesize.
#[derive(Debug, Clone)]
pub struct SynthSpec {
    /// Devices (corpus records) to emit.
    pub devices: usize,
    /// Injected systematic faults as `(fault index, share of devices)`;
    /// the rest get uniformly random faults.
    pub systematic: Vec<(usize, f64)>,
    /// Corruption sweep: per-bit masking probability.
    pub mask_rate: f64,
    /// Corruption sweep: per-bit flip probability.
    pub flip_rate: f64,
    /// Emit every `n`-th record in the JSONL shape (0 = text only).
    pub jsonl_every: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for SynthSpec {
    fn default() -> Self {
        Self {
            devices: 100,
            systematic: Vec::new(),
            mask_rate: 0.02,
            flip_rate: 0.01,
            jsonl_every: 5,
            seed: 1,
        }
    }
}

/// The deterministic device id of record `index`.
pub fn device_name(index: usize) -> String {
    format!("dev-{index:06}")
}

/// Synthesizes a same/different- or full-dictionary-shaped corpus (per-test
/// responses) from `matrix`, writing one line per device to `out`.
///
/// Returns the injected fault plan: `plan[d]` is the fault device `d`
/// actually carries (before corruption), for ground-truth assertions.
///
/// # Errors
///
/// Propagates write errors.
pub fn synthesize(
    matrix: &ResponseMatrix,
    spec: &SynthSpec,
    out: &mut dyn Write,
) -> io::Result<Vec<usize>> {
    let mut rng = Prng::seed_from_u64(spec.seed);
    let faults = matrix.fault_count();
    let mut plan: Vec<usize> = Vec::with_capacity(spec.devices);
    for &(fault, share) in &spec.systematic {
        let quota = ((share * spec.devices as f64).round() as usize)
            .min(spec.devices.saturating_sub(plan.len()));
        plan.extend(std::iter::repeat_n(fault, quota));
    }
    while plan.len() < spec.devices {
        plan.push(rng.gen_range(0..faults));
    }
    // Fisher–Yates so systematic devices interleave with the noise.
    for i in (1..plan.len()).rev() {
        plan.swap(i, rng.gen_range(0..i + 1));
    }
    let mut responses: Vec<MaskedBitVec> = Vec::with_capacity(matrix.test_count());
    for (device, &fault) in plan.iter().enumerate() {
        responses.clear();
        for test in 0..matrix.test_count() {
            let response = matrix.response(test, matrix.class(test, fault));
            responses.push(MaskedBitVec::from_known(response));
        }
        let model = CorruptionModel::clean()
            .with_mask_rate(spec.mask_rate)
            .with_flip_rate(spec.flip_rate)
            .with_seed(spec.seed ^ (device as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        model.degrade(&mut responses);
        let obs: Vec<String> = responses.iter().map(MaskedBitVec::to_string).collect();
        let obs = obs.join("/");
        let name = device_name(device);
        if spec.jsonl_every > 0 && (device + 1) % spec.jsonl_every == 0 {
            writeln!(out, "{{\"device\":\"{name}\",\"obs\":\"{obs}\"}}")?;
        } else {
            writeln!(out, "{name} {obs}")?;
        }
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_is_seed_deterministic_and_honors_shares() {
        let matrix = sdd_core::example::paper_example();
        let spec = SynthSpec {
            devices: 40,
            systematic: vec![(2, 0.5), (0, 0.25)],
            seed: 7,
            ..Default::default()
        };
        let mut a = Vec::new();
        let plan_a = synthesize(&matrix, &spec, &mut a).unwrap();
        let mut b = Vec::new();
        let plan_b = synthesize(&matrix, &spec, &mut b).unwrap();
        assert_eq!(a, b);
        assert_eq!(plan_a, plan_b);
        assert_eq!(plan_a.len(), 40);
        assert!(plan_a.iter().filter(|&&f| f == 2).count() >= 20);
        // Both line shapes appear.
        let text = String::from_utf8(a).unwrap();
        assert!(text.lines().any(|l| l.starts_with('{')));
        assert!(text.lines().any(|l| l.starts_with("dev-")));
        assert_eq!(text.lines().count(), 40);
    }

    #[test]
    fn different_seeds_differ() {
        let matrix = sdd_core::example::paper_example();
        let mut a = Vec::new();
        let mut b = Vec::new();
        let spec = SynthSpec {
            devices: 30,
            ..Default::default()
        };
        synthesize(&matrix, &spec, &mut a).unwrap();
        synthesize(
            &matrix,
            &SynthSpec {
                seed: spec.seed + 1,
                ..spec
            },
            &mut b,
        )
        .unwrap();
        assert_ne!(a, b);
    }
}
