//! # sdd-volume — volume diagnosis
//!
//! Production test floors do not fail one device at a time: they emit
//! millions of failing-die datalogs whose value is in the *aggregate*. A
//! systematic defect shows up as the same fault — or the same output cone
//! — recurring across die; random defects scatter. This crate turns a
//! corpus of per-device masked observations into one clustered verdict:
//!
//! 1. **Ingest** ([`corpus`]) — line-oriented text/JSONL records over the
//!    [`sdd_logic::MaskedBitVec`] ternary alphabet; malformed lines are
//!    counted and skipped, never fatal.
//! 2. **Diagnose** ([`engine`]) — every device runs the masked-diagnosis
//!    ladder against a whole or sharded dictionary ([`shard`]) across a
//!    `jobs` worker pool, honoring a per-device [`sdd_core::Budget`];
//!    output order and bytes are identical for every job count.
//! 3. **Aggregate** ([`cluster`]) — verdicts cluster by candidate fault
//!    and by output cone, with recurrence counts, confidence-weighted
//!    scores, and a systematic-vs-random threshold classification.
//! 4. **Report** — a streaming JSON report (one record per device plus a
//!    final summary block), so corpora never buffer in RAM.
//!
//! The engine is surfaced twice — the `sdd volume` CLI subcommand and the
//! serve `VOLUME` verb — through the [`ShardSource`] seam; both emit
//! bit-identical JSON payloads by construction. [`synth`] generates the
//! seeded corpora the benches and examples drive it with.
//!
//! # Example
//!
//! ```
//! use sdd_core::SameDifferentDictionary;
//! use sdd_store::StoredDictionary;
//! use sdd_volume::{run, JsonlSink, VolumeOptions, WholeSource};
//!
//! let matrix = sdd_core::example::paper_example();
//! let sd = SameDifferentDictionary::with_fault_free_baselines(&matrix);
//! let source = WholeSource::new(StoredDictionary::SameDifferent(sd));
//! // Three devices with the fault-1 signature, one noise device, one
//! // corrupt line that is skipped, not fatal.
//! let corpus = "\
//! dev-0 10/11
//! dev-1 10/1X
//! dev-2 10/11
//! dev-3 01/00
//! dev-4 truncated-garbage!!
//! ";
//! let mut lines = corpus.lines().map(|l| Ok(l.to_owned()));
//! let mut report = Vec::new();
//! let summary = run(
//!     &source,
//!     &mut lines,
//!     &mut JsonlSink(&mut report),
//!     &VolumeOptions::default(),
//! )?;
//! assert_eq!(summary.devices, 4);
//! assert_eq!(summary.skipped, 1);
//! assert!(summary.clusters.faults[0].systematic);
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod corpus;
pub mod engine;
pub mod shard;
pub mod source;
pub mod synth;

pub use cluster::{Aggregator, Clusters, ConeCluster, FaultCluster};
pub use corpus::{Observation, Parsed, Shape, SkipReason};
pub use engine::{
    quality_name, run, JsonlSink, RecordSink, Verdict, VolumeOptions, VolumeSummary, WireSink,
};
pub use source::{error_token, FetchError, PreloadedShards, ShardSource, WholeSource};
pub use synth::{device_name, synthesize, SynthSpec};
