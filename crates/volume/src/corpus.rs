//! The datalog-corpus line format and its resilient parser.
//!
//! A corpus is line-oriented: one failing device per line, in either of two
//! interchangeable shapes (a single corpus may mix them freely):
//!
//! ```text
//! # comment lines and blank lines are ignored
//! dev-000001 01X0/1100/0X11
//! {"device":"dev-000002","obs":"0110/1100/0011"}
//! ```
//!
//! The observation uses the serve protocol's shapes: pass/fail
//! dictionaries take one `k`-bit ternary signature, same/different and
//! full dictionaries take `k` slash-separated `m`-bit ternary per-test
//! responses (`0`/`1` known, `X`/`x`/`-` masked — the
//! [`MaskedBitVec`] alphabet).
//!
//! Parsing is *resilient by contract*: a malformed line is classified into
//! a [`SkipReason`], counted, and skipped — it never aborts the run and
//! never disturbs the diagnosis of neighboring devices. This is what makes
//! the ingester safe against the tester-side corruption classes
//! ([`sdd_sim::CorruptionModel`] truncation, masking, and bit flips plus
//! plain file mangling).

use sdd_logic::MaskedBitVec;
use sdd_store::DictionaryKind;

/// Maximum accepted device-id length, in bytes.
pub const MAX_DEVICE_ID: usize = 64;

/// The observation dimensions one corpus must conform to, fixed by the
/// dictionary it will be diagnosed against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shape {
    /// Dictionary kind — selects signature vs. per-test responses.
    pub kind: DictionaryKind,
    /// Number of tests `k`.
    pub tests: usize,
    /// Observed outputs `m` per response (unused for pass/fail).
    pub outputs: usize,
}

/// One device's parsed observation, in the shape [`Shape::kind`] expects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Observation {
    /// A `k`-bit (possibly partial) pass/fail signature.
    Signature(MaskedBitVec),
    /// Per-test output responses, one per test.
    Responses(Vec<MaskedBitVec>),
}

/// Why a corpus line was skipped. Every reason maps to a stable one-word
/// token that appears in skipped-record report lines and the summary's
/// `skip_reasons` map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SkipReason {
    /// The line ended before the observation (device id alone).
    Truncated,
    /// The device id is empty, too long, or uses characters outside
    /// `[A-Za-z0-9_.:-]`.
    BadDeviceId,
    /// The observation contains characters outside the ternary alphabet,
    /// or the line carries trailing garbage after the observation.
    BadObservation,
    /// A `{`-prefixed line without the `"device"` and `"obs"` string
    /// fields the JSONL shape requires.
    BadJson,
    /// A signature or response of the wrong bit width.
    Width,
    /// The wrong number of per-test responses.
    Count,
}

impl SkipReason {
    /// The stable report token.
    pub fn token(self) -> &'static str {
        match self {
            SkipReason::Truncated => "truncated",
            SkipReason::BadDeviceId => "bad-device-id",
            SkipReason::BadObservation => "bad-observation",
            SkipReason::BadJson => "bad-json",
            SkipReason::Width => "width",
            SkipReason::Count => "count",
        }
    }
}

/// The outcome of parsing one corpus line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed {
    /// A blank or `#`-comment line — not a record at all.
    Ignored,
    /// A well-formed device record.
    Record {
        /// The device id.
        device: String,
        /// Its observation, already validated against the [`Shape`].
        observation: Observation,
    },
    /// A malformed record: counted and skipped, never fatal.
    Skip {
        /// The device id, when it could still be recovered.
        device: Option<String>,
        /// The classification.
        reason: SkipReason,
    },
}

/// Is `id` an acceptable device id? (1..=[`MAX_DEVICE_ID`] bytes of
/// `[A-Za-z0-9_.:-]` — a charset that needs no JSON escaping.)
pub fn valid_device_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_DEVICE_ID
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b':' | b'-'))
}

/// Parses one corpus line against `shape`.
///
/// Never fails: malformed lines come back as [`Parsed::Skip`] with the
/// reason classified, so a corrupted corpus degrades record-by-record.
///
/// # Example
///
/// ```
/// use sdd_store::DictionaryKind;
/// use sdd_volume::corpus::{parse_line, Parsed, Shape, SkipReason};
///
/// let shape = Shape { kind: DictionaryKind::PassFail, tests: 3, outputs: 0 };
/// assert!(matches!(parse_line("dev-1 01X", &shape), Parsed::Record { .. }));
/// assert!(matches!(parse_line("# a comment", &shape), Parsed::Ignored));
/// assert!(matches!(
///     parse_line("dev-2 01", &shape),
///     Parsed::Skip { reason: SkipReason::Width, .. }
/// ));
/// ```
pub fn parse_line(line: &str, shape: &Shape) -> Parsed {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Parsed::Ignored;
    }
    let (device_raw, obs_raw) = if line.starts_with('{') {
        let device = json_string_field(line, "device");
        let obs = json_string_field(line, "obs");
        match (device, obs) {
            (Some(device), Some(obs)) => (device, obs),
            (device, _) => {
                let device = device.filter(|d| valid_device_id(d));
                return Parsed::Skip {
                    device,
                    reason: SkipReason::BadJson,
                };
            }
        }
    } else {
        let mut tokens = line.split_whitespace();
        let device = tokens.next().unwrap_or_default().to_owned();
        let Some(obs) = tokens.next() else {
            let device = Some(device).filter(|d| valid_device_id(d));
            return Parsed::Skip {
                device,
                reason: SkipReason::Truncated,
            };
        };
        if tokens.next().is_some() {
            let device = Some(device).filter(|d| valid_device_id(d));
            return Parsed::Skip {
                device,
                reason: SkipReason::BadObservation,
            };
        }
        (device, obs.to_owned())
    };
    if !valid_device_id(&device_raw) {
        return Parsed::Skip {
            device: None,
            reason: SkipReason::BadDeviceId,
        };
    }
    match parse_observation(&obs_raw, shape) {
        Ok(observation) => Parsed::Record {
            device: device_raw,
            observation,
        },
        Err(reason) => Parsed::Skip {
            device: Some(device_raw),
            reason,
        },
    }
}

/// Parses and shape-checks one observation token.
fn parse_observation(obs: &str, shape: &Shape) -> Result<Observation, SkipReason> {
    match shape.kind {
        DictionaryKind::PassFail => {
            if obs.contains('/') {
                // Per-test responses offered to a pass/fail dictionary:
                // the response *count* is what disagrees with the shape.
                return Err(SkipReason::Count);
            }
            let signature: MaskedBitVec = obs.parse().map_err(|_| SkipReason::BadObservation)?;
            if signature.len() != shape.tests {
                return Err(SkipReason::Width);
            }
            Ok(Observation::Signature(signature))
        }
        DictionaryKind::SameDifferent | DictionaryKind::Full => {
            let tokens: Vec<&str> = obs.split('/').collect();
            if tokens.len() != shape.tests {
                return Err(SkipReason::Count);
            }
            let mut responses = Vec::with_capacity(tokens.len());
            for token in tokens {
                let response: MaskedBitVec =
                    token.parse().map_err(|_| SkipReason::BadObservation)?;
                if response.len() != shape.outputs {
                    return Err(SkipReason::Width);
                }
                responses.push(response);
            }
            Ok(Observation::Responses(responses))
        }
    }
}

/// Extracts a `"key":"value"` string field from a single-line JSON object
/// without a JSON parser. Escapes are not supported — corpus fields are
/// restricted to charsets that never need them; a field containing `\` or
/// an unterminated string comes back `None` (→ `bad-json`).
fn json_string_field(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let at = line.find(&needle)? + needle.len();
    let rest = line[at..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    let value = &rest[..end];
    if value.contains('\\') {
        return None;
    }
    Some(value.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sd_shape() -> Shape {
        Shape {
            kind: DictionaryKind::SameDifferent,
            tests: 2,
            outputs: 3,
        }
    }

    #[test]
    fn text_and_jsonl_shapes_parse_identically() {
        let shape = sd_shape();
        let text = parse_line("dev-7 01X/1X0", &shape);
        let json = parse_line("{\"device\":\"dev-7\",\"obs\":\"01X/1X0\"}", &shape);
        assert_eq!(text, json);
        let Parsed::Record {
            device,
            observation,
        } = text
        else {
            panic!("expected a record");
        };
        assert_eq!(device, "dev-7");
        let Observation::Responses(responses) = observation else {
            panic!("same/different takes responses");
        };
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].to_string(), "01X");
    }

    #[test]
    fn corruption_matrix_classifies_each_line() {
        let shape = sd_shape();
        let cases = [
            ("dev-1", SkipReason::Truncated),
            ("dev!? 01X/1X0", SkipReason::BadDeviceId),
            ("dev-1 01Q/1X0", SkipReason::BadObservation),
            ("dev-1 01X/1X0 trailing", SkipReason::BadObservation),
            ("{\"device\":\"dev-1\"}", SkipReason::BadJson),
            ("{not json at all", SkipReason::BadJson),
            ("dev-1 01/10", SkipReason::Width),
            ("dev-1 01X", SkipReason::Count),
            ("dev-1 01X/1X0/110", SkipReason::Count),
        ];
        for (line, expected) in cases {
            match parse_line(line, &shape) {
                Parsed::Skip { reason, .. } => assert_eq!(reason, expected, "line {line:?}"),
                other => panic!("line {line:?}: expected skip, got {other:?}"),
            }
        }
        // An over-long id is rejected too.
        let long = format!("{} 01X/1X0", "d".repeat(MAX_DEVICE_ID + 1));
        assert!(matches!(
            parse_line(&long, &shape),
            Parsed::Skip {
                reason: SkipReason::BadDeviceId,
                ..
            }
        ));
    }

    #[test]
    fn pass_fail_takes_one_signature() {
        let shape = Shape {
            kind: DictionaryKind::PassFail,
            tests: 4,
            outputs: 0,
        };
        assert!(matches!(
            parse_line("dev-1 01X1", &shape),
            Parsed::Record {
                observation: Observation::Signature(_),
                ..
            }
        ));
        assert!(matches!(
            parse_line("dev-1 01/X1", &shape),
            Parsed::Skip {
                reason: SkipReason::Count,
                ..
            }
        ));
    }

    #[test]
    fn blank_and_comment_lines_are_not_records() {
        let shape = sd_shape();
        assert_eq!(parse_line("", &shape), Parsed::Ignored);
        assert_eq!(parse_line("   ", &shape), Parsed::Ignored);
        assert_eq!(parse_line("# header", &shape), Parsed::Ignored);
    }

    #[test]
    fn json_field_scanner_handles_spacing_and_rejects_escapes() {
        assert_eq!(
            json_string_field("{ \"device\" : \"d1\" , \"obs\":\"01\" }", "device").as_deref(),
            Some("d1")
        );
        assert_eq!(json_string_field("{\"device\":\"a\\\"b\"}", "device"), None);
        assert_eq!(
            json_string_field("{\"device\":\"unterminated", "device"),
            None
        );
    }
}
