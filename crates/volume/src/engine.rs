//! The streaming volume-diagnosis engine.
//!
//! [`run`] pulls corpus lines from an iterator, diagnoses each device
//! against a [`ShardSource`] across a `jobs`-thread worker pool, emits one
//! JSON record per device to a [`RecordSink`] *in corpus order*, and
//! finishes with a single summary record carrying the defect clusters.
//! Input and output both stream: memory stays bounded by one work batch
//! regardless of corpus size, so a million-device corpus never buffers in
//! RAM.
//!
//! Determinism is a hard contract: for a fixed corpus and source, the
//! emitted bytes are identical for every `jobs` value (lines are batched
//! identically, workers only fill an index-addressed slot, and emission +
//! cluster accumulation replay serially in line order), and identical
//! across the two surfaces (`sdd volume` and the serve `VOLUME` verb)
//! because both call this function — only the sink's framing differs.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use sdd_core::diagnose::{MatchQuality, ScoredCandidate};
use sdd_core::Budget;
use sdd_store::StoredDictionary;

use crate::cluster::{Aggregator, Clusters};
use crate::corpus::{parse_line, Observation, Parsed, Shape, SkipReason};
use crate::shard::{diagnose_sharded, ShardObservation};
use crate::source::ShardSource;

/// Candidates shown per device record (matching the serve `top=` field).
pub const TOP_CANDIDATES: usize = 5;
/// Best-set entries shown per device record; the full tie count is always
/// reported as `nbest`.
pub const BEST_SHOWN: usize = 8;

/// Tuning for one volume run.
#[derive(Debug, Clone)]
pub struct VolumeOptions {
    /// Worker threads for per-device diagnosis (output is identical for
    /// every value).
    pub jobs: usize,
    /// Per-device budget: shard loads stop when it expires, degrading that
    /// device's coverage instead of stalling the corpus.
    pub budget: Budget,
    /// Systematic-classification threshold, as a fraction of diagnosed
    /// devices (see [`crate::cluster::systematic_at`]).
    pub threshold: f64,
    /// Provenance seed stamped into the summary (diagnosis itself is
    /// deterministic; this traces which synthesized corpus a report came
    /// from).
    pub seed: u64,
}

impl Default for VolumeOptions {
    fn default() -> Self {
        Self {
            jobs: 1,
            budget: Budget::unlimited(),
            threshold: 0.05,
            seed: 0,
        }
    }
}

/// Per-record verdict, mirroring the serve reply contract: `OK` for a
/// fully-covered diagnosis, `PARTIAL` when degraded shards reduced
/// coverage, `ERR` for a record that produced no ranking (skipped or
/// failed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Full-coverage diagnosis.
    Ok,
    /// Diagnosis over a shard subset (degraded coverage).
    Partial,
    /// No ranking: the record was skipped or every shard failed.
    Err,
}

impl Verdict {
    /// The wire token.
    pub fn token(self) -> &'static str {
        match self {
            Verdict::Ok => "OK",
            Verdict::Partial => "PARTIAL",
            Verdict::Err => "ERR",
        }
    }
}

/// Where report lines go. The JSON payloads are identical across sinks;
/// only the framing differs.
pub trait RecordSink {
    /// One device record.
    ///
    /// # Errors
    ///
    /// Transport errors abort the run.
    fn record(&mut self, verdict: Verdict, json: &str) -> io::Result<()>;
    /// The final summary record.
    ///
    /// # Errors
    ///
    /// Transport errors abort the run.
    fn summary(&mut self, json: &str) -> io::Result<()>;
}

/// Plain JSONL framing — one JSON object per line — for files and stdout.
pub struct JsonlSink<W: Write>(pub W);

impl<W: Write> RecordSink for JsonlSink<W> {
    fn record(&mut self, _verdict: Verdict, json: &str) -> io::Result<()> {
        writeln!(self.0, "{json}")
    }
    fn summary(&mut self, json: &str) -> io::Result<()> {
        writeln!(self.0, "{json}")
    }
}

/// Line-protocol framing for the serve `VOLUME` verb: each record line is
/// prefixed with its verdict token, and the summary closes the stream as
/// `OK SUMMARY <json>` — stripping the frame tokens recovers the exact
/// JSONL report.
pub struct WireSink<W: Write>(pub W);

impl<W: Write> RecordSink for WireSink<W> {
    fn record(&mut self, verdict: Verdict, json: &str) -> io::Result<()> {
        writeln!(self.0, "{} {json}", verdict.token())
    }
    fn summary(&mut self, json: &str) -> io::Result<()> {
        writeln!(self.0, "OK SUMMARY {json}")
    }
}

/// Corpus-level counters and clusters, as returned by [`run`] (the same
/// numbers the summary record carries).
#[derive(Debug, Clone)]
pub struct VolumeSummary {
    /// Corpus lines consumed.
    pub records: usize,
    /// Blank / comment lines (not records).
    pub ignored: usize,
    /// Device records attempted (`ok + partial + error`).
    pub devices: usize,
    /// Fully-covered diagnoses.
    pub ok: usize,
    /// Degraded-coverage diagnoses.
    pub partial: usize,
    /// Devices where every shard failed.
    pub error: usize,
    /// Malformed records skipped.
    pub skipped: usize,
    /// Skip counts by reason token.
    pub skip_reasons: BTreeMap<&'static str, usize>,
    /// The ranked, classified defect clusters.
    pub clusters: Clusters,
}

/// One line's processed outcome (worker output, emitted serially).
enum Work {
    Ignored,
    Skipped {
        device: Option<String>,
        reason: SkipReason,
    },
    Failed {
        device: String,
        reason: &'static str,
    },
    Diagnosed(Box<Diagnosed>),
}

struct Diagnosed {
    device: String,
    quality: MatchQuality,
    known: usize,
    distance: usize,
    nbest: usize,
    best: Vec<usize>,
    top: Vec<ScoredCandidate>,
    top_fault: usize,
    top_confidence: f64,
    covered: usize,
    degraded: Vec<(usize, &'static str)>,
}

/// Runs a whole corpus through ingestion → diagnosis → aggregation,
/// streaming records to `sink`.
///
/// Malformed corpus lines never abort (they become `ERR` records); only
/// transport failures — the line iterator or the sink — do.
///
/// # Errors
///
/// The first transport error, after which the run stops where it was.
///
/// # Example
///
/// ```
/// use sdd_core::SameDifferentDictionary;
/// use sdd_store::StoredDictionary;
/// use sdd_volume::{run, JsonlSink, VolumeOptions, WholeSource};
///
/// let matrix = sdd_core::example::paper_example();
/// let sd = SameDifferentDictionary::with_fault_free_baselines(&matrix);
/// let source = WholeSource::new(StoredDictionary::SameDifferent(sd));
/// let corpus = "dev-0 10/11\ndev-1 1X/11\nbad line !!\n";
/// let mut lines = corpus.lines().map(|l| Ok(l.to_owned()));
/// let mut out = Vec::new();
/// let summary = run(
///     &source,
///     &mut lines,
///     &mut JsonlSink(&mut out),
///     &VolumeOptions::default(),
/// )?;
/// assert_eq!(summary.devices, 2);
/// assert_eq!(summary.skipped, 1);
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn run<S: ShardSource + ?Sized>(
    source: &S,
    lines: &mut dyn Iterator<Item = io::Result<String>>,
    sink: &mut dyn RecordSink,
    options: &VolumeOptions,
) -> io::Result<VolumeSummary> {
    let shape = source.shape();
    let jobs = options.jobs.max(1);
    let batch_cap = jobs * 32;
    let mut line_no = 0usize; // 1-based in records
    let mut ignored = 0usize;
    let mut ok = 0usize;
    let mut partial = 0usize;
    let mut error = 0usize;
    let mut skip_reasons: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut aggregator = Aggregator::new();
    let mut json = String::new();
    let mut batch: Vec<(usize, String)> = Vec::with_capacity(batch_cap);
    loop {
        batch.clear();
        while batch.len() < batch_cap {
            match lines.next() {
                Some(line) => {
                    line_no += 1;
                    batch.push((line_no, line?));
                }
                None => break,
            }
        }
        if batch.is_empty() {
            break;
        }
        let outcomes = process_batch(source, &shape, &batch, jobs, &options.budget);
        for ((line, _), work) in batch.iter().zip(&outcomes) {
            let verdict = match work {
                Work::Ignored => {
                    ignored += 1;
                    continue;
                }
                Work::Skipped { reason, .. } => {
                    *skip_reasons.entry(reason.token()).or_insert(0) += 1;
                    Verdict::Err
                }
                Work::Failed { .. } => {
                    error += 1;
                    Verdict::Err
                }
                Work::Diagnosed(d) => {
                    // Partial verdicts still carry a legitimate ranking
                    // over the covered shards, so they join the clusters.
                    aggregator.add(
                        d.top_fault,
                        d.top_confidence,
                        source.fault_cone(d.top_fault),
                    );
                    if d.degraded.is_empty() {
                        ok += 1;
                        Verdict::Ok
                    } else {
                        partial += 1;
                        Verdict::Partial
                    }
                }
            };
            json.clear();
            push_record_json(&mut json, *line, work, source.fault_count());
            sink.record(verdict, &json)?;
        }
    }
    let skipped: usize = skip_reasons.values().sum();
    let clusters = aggregator.finish(options.threshold, ok + partial);
    let summary = VolumeSummary {
        records: line_no,
        ignored,
        devices: ok + partial + error,
        ok,
        partial,
        error,
        skipped,
        skip_reasons,
        clusters,
    };
    json.clear();
    push_summary_json(&mut json, &summary, options);
    sink.summary(&json)?;
    Ok(summary)
}

/// Processes one batch, serially or across scoped workers; either path
/// fills the same index-addressed slots, so the merged order — and every
/// downstream byte — is independent of `jobs`.
fn process_batch<S: ShardSource + ?Sized>(
    source: &S,
    shape: &Shape,
    batch: &[(usize, String)],
    jobs: usize,
    budget: &Budget,
) -> Vec<Work> {
    if jobs <= 1 || batch.len() <= 1 {
        return batch
            .iter()
            .map(|(_, line)| process_line(source, shape, line, budget))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<Work>> = Vec::with_capacity(batch.len());
    slots.resize_with(batch.len(), || None);
    let collected: Vec<Vec<(usize, Work)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs.min(batch.len()))
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::SeqCst);
                        let Some((_, line)) = batch.get(index) else {
                            break;
                        };
                        local.push((index, process_line(source, shape, line, budget)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("volume worker panicked"))
            .collect()
    });
    for (index, work) in collected.into_iter().flatten() {
        slots[index] = Some(work);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every batch slot processed"))
        .collect()
}

fn process_line<S: ShardSource + ?Sized>(
    source: &S,
    shape: &Shape,
    line: &str,
    budget: &Budget,
) -> Work {
    match parse_line(line, shape) {
        Parsed::Ignored => Work::Ignored,
        Parsed::Skip { device, reason } => Work::Skipped { device, reason },
        Parsed::Record {
            device,
            observation,
        } => match diagnose_device(source, &observation, budget) {
            Ok(mut diagnosed) => {
                diagnosed.device = device;
                Work::Diagnosed(diagnosed)
            }
            Err(reason) => Work::Failed { device, reason },
        },
    }
}

/// Diagnoses one device: fetches shards under the per-device budget
/// (resident shards still count when the budget expires — a registry hit
/// is a clone, not I/O), merges whatever loaded, and records the rest as
/// degraded coverage. Fails only when *nothing* loaded.
fn diagnose_device<S: ShardSource + ?Sized>(
    source: &S,
    observation: &Observation,
    budget: &Budget,
) -> Result<Box<Diagnosed>, &'static str> {
    let start = Instant::now();
    let count = source.shard_count();
    let mut degraded: Vec<(usize, &'static str)> = Vec::new();
    let mut fetched: Vec<(usize, Arc<StoredDictionary>)> = Vec::with_capacity(count);
    for index in 0..count {
        if !budget.allows(index, start.elapsed()) {
            match source.resident(index) {
                Some(d) => fetched.push((source.fault_start(index), d)),
                None => degraded.push((index, "deadline")),
            }
            continue;
        }
        match source.fetch(index) {
            Ok(d) => fetched.push((source.fault_start(index), d)),
            Err(e) => degraded.push((index, e.token)),
        }
    }
    if fetched.is_empty() {
        let reason = degraded
            .iter()
            .map(|&(_, token)| token)
            .find(|&token| token != "deadline")
            .unwrap_or("deadline");
        return Err(reason);
    }
    let shards: Vec<(usize, &StoredDictionary)> = fetched
        .iter()
        .map(|(fault_start, d)| (*fault_start, d.as_ref()))
        .collect();
    let shard_observation = match observation {
        Observation::Signature(signature) => ShardObservation::Signature(signature),
        Observation::Responses(responses) => ShardObservation::Responses(responses),
    };
    let report =
        diagnose_sharded(&shards, shard_observation).map_err(|e| crate::source::error_token(&e))?;
    let covered: usize = fetched.iter().map(|(_, d)| d.fault_count()).sum();
    let distance = report.ranking.first().map_or(0, |c| c.mismatches);
    let top_fault = report.best.first().copied().unwrap_or(0);
    let top_confidence = report.ranking.first().map_or(0.0, |c| c.confidence);
    Ok(Box::new(Diagnosed {
        device: String::new(),
        quality: report.quality,
        known: report.known,
        distance,
        nbest: report.best.len(),
        best: report.best.iter().copied().take(BEST_SHOWN).collect(),
        top: report
            .ranking
            .iter()
            .take(TOP_CANDIDATES)
            .cloned()
            .collect(),
        top_fault,
        top_confidence,
        covered,
        degraded,
    }))
}

/// Ladder-rung name, matching the serve protocol's `quality=` values.
pub fn quality_name(quality: MatchQuality) -> &'static str {
    match quality {
        MatchQuality::Exact => "exact",
        MatchQuality::ConsistentUnderMask => "consistent",
        MatchQuality::Ranked => "ranked",
    }
}

fn push_record_json(out: &mut String, line: usize, work: &Work, total_faults: usize) {
    use std::fmt::Write as _;
    match work {
        Work::Ignored => unreachable!("ignored lines emit no record"),
        Work::Skipped { device, reason } => {
            let _ = write!(out, "{{\"line\":{line}");
            if let Some(device) = device {
                let _ = write!(out, ",\"device\":\"{device}\"");
            }
            let _ = write!(
                out,
                ",\"status\":\"skipped\",\"reason\":\"{}\"}}",
                reason.token()
            );
        }
        Work::Failed { device, reason } => {
            let _ = write!(
                out,
                "{{\"line\":{line},\"device\":\"{device}\",\"status\":\"error\",\"reason\":\"{reason}\"}}"
            );
        }
        Work::Diagnosed(d) => {
            let status = if d.degraded.is_empty() {
                "ok"
            } else {
                "partial"
            };
            let _ = write!(
                out,
                "{{\"line\":{line},\"device\":\"{}\",\"status\":\"{status}\",\"quality\":\"{}\",\"known\":{},\"distance\":{},\"nbest\":{},\"best\":[",
                d.device,
                quality_name(d.quality),
                d.known,
                d.distance,
                d.nbest,
            );
            push_joined(out, d.best.iter(), |out, fault| {
                let _ = write!(out, "{fault}");
            });
            out.push_str("],\"top\":[");
            push_joined(out, d.top.iter(), |out, c| {
                let _ = write!(out, "\"{}:{}:{:.4}\"", c.fault, c.mismatches, c.confidence);
            });
            out.push(']');
            if !d.degraded.is_empty() {
                let _ = write!(
                    out,
                    ",\"covered\":\"{}/{total_faults}\",\"degraded\":[",
                    d.covered
                );
                push_joined(out, d.degraded.iter(), |out, (shard, token)| {
                    let _ = write!(out, "\"{shard}:{token}\"");
                });
                out.push(']');
            }
            out.push('}');
        }
    }
}

fn push_summary_json(out: &mut String, summary: &VolumeSummary, options: &VolumeOptions) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"summary\":{{\"records\":{},\"ignored\":{},\"devices\":{},\"ok\":{},\"partial\":{},\"error\":{},\"skipped\":{},\"skip_reasons\":{{",
        summary.records,
        summary.ignored,
        summary.devices,
        summary.ok,
        summary.partial,
        summary.error,
        summary.skipped,
    );
    push_joined(out, summary.skip_reasons.iter(), |out, (token, count)| {
        let _ = write!(out, "\"{token}\":{count}");
    });
    let _ = write!(
        out,
        "}},\"seed\":{},\"threshold\":{:.4},\"systematic_at\":{},\"fault_clusters\":[",
        options.seed, options.threshold, summary.clusters.systematic_at,
    );
    push_joined(out, summary.clusters.faults.iter(), |out, c| {
        let _ = write!(
            out,
            "{{\"fault\":{},\"count\":{},\"score\":{:.4},\"class\":\"{}\"}}",
            c.fault,
            c.count,
            c.score,
            class_name(c.systematic),
        );
    });
    out.push_str("],\"cone_clusters\":[");
    push_joined(out, summary.clusters.cones.iter(), |out, c| {
        let _ = write!(
            out,
            "{{\"cone\":\"{}\",\"count\":{},\"score\":{:.4},\"nfaults\":{},\"faults\":[",
            c.cone,
            c.count,
            c.score,
            c.faults.len(),
        );
        push_joined(out, c.faults.iter().take(BEST_SHOWN), |out, fault| {
            let _ = write!(out, "{fault}");
        });
        let _ = write!(out, "],\"class\":\"{}\"}}", class_name(c.systematic));
    });
    out.push_str("]}}");
}

fn class_name(systematic: bool) -> &'static str {
    if systematic {
        "systematic"
    } else {
        "random"
    }
}

fn push_joined<T>(
    out: &mut String,
    items: impl Iterator<Item = T>,
    mut push: impl FnMut(&mut String, T),
) {
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        push(out, item);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::WholeSource;
    use sdd_core::SameDifferentDictionary;
    use std::time::Duration;

    fn source() -> WholeSource {
        let matrix = sdd_core::example::paper_example();
        WholeSource::new(StoredDictionary::SameDifferent(
            SameDifferentDictionary::with_fault_free_baselines(&matrix),
        ))
    }

    fn run_corpus(corpus: &str, options: &VolumeOptions) -> (Vec<u8>, VolumeSummary) {
        let source = source();
        let mut lines = corpus.lines().map(|l| Ok(l.to_owned()));
        let mut out = Vec::new();
        let summary = run(&source, &mut lines, &mut JsonlSink(&mut out), options).unwrap();
        (out, summary)
    }

    #[test]
    fn report_bytes_are_jobs_invariant() {
        let corpus = "\
# synthetic corpus
dev-0 10/11
dev-1 1X/11

dev-2 01/0X
garbage !! line
dev-3 10/11
{\"device\":\"dev-4\",\"obs\":\"10/11\"}
";
        let serial = run_corpus(corpus, &VolumeOptions::default());
        let parallel = run_corpus(
            corpus,
            &VolumeOptions {
                jobs: 4,
                ..Default::default()
            },
        );
        assert_eq!(serial.0, parallel.0, "jobs must not change a byte");
        assert_eq!(serial.1.devices, 5);
        assert_eq!(serial.1.ignored, 2);
        assert_eq!(serial.1.skipped, 1);
    }

    #[test]
    fn wire_frames_strip_back_to_the_jsonl_report() {
        let corpus = "dev-0 10/11\nbad !! line\n";
        let options = VolumeOptions::default();
        let (jsonl, _) = run_corpus(corpus, &options);
        let source = source();
        let mut lines = corpus.lines().map(|l| Ok(l.to_owned()));
        let mut wire = Vec::new();
        run(&source, &mut lines, &mut WireSink(&mut wire), &options).unwrap();
        let stripped: String = String::from_utf8(wire)
            .unwrap()
            .lines()
            .map(|l| {
                let l = l.strip_prefix("OK SUMMARY ").unwrap_or(l);
                let l = l
                    .strip_prefix("OK ")
                    .or_else(|| l.strip_prefix("PARTIAL "))
                    .or_else(|| l.strip_prefix("ERR "))
                    .unwrap_or(l);
                format!("{l}\n")
            })
            .collect();
        assert_eq!(stripped.into_bytes(), jsonl);
    }

    #[test]
    fn summary_counts_and_clusters_line_up() {
        // Three devices agree on one fault signature; one is noise.
        let corpus = "\
dev-0 10/11
dev-1 10/11
dev-2 10/11
dev-3 01/00
";
        let (out, summary) = run_corpus(corpus, &VolumeOptions::default());
        assert_eq!(summary.ok, 4);
        assert_eq!(summary.clusters.systematic_at, 2);
        let top = &summary.clusters.faults[0];
        assert_eq!(top.count, 3);
        assert!(top.systematic);
        assert!(!summary.clusters.faults.last().unwrap().systematic);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"class\":\"systematic\""));
        assert!(text.ends_with("]}}\n"));
    }

    #[test]
    fn a_zero_budget_degrades_to_an_error_record_not_an_abort() {
        let corpus = "dev-0 10/11\n";
        let source = source();
        // `WholeSource::resident` always hits, so exhaust the budget
        // against a source with nothing resident.
        struct Cold(WholeSource);
        impl ShardSource for Cold {
            fn kind(&self) -> sdd_store::DictionaryKind {
                self.0.kind()
            }
            fn tests(&self) -> usize {
                self.0.tests()
            }
            fn outputs(&self) -> usize {
                self.0.outputs()
            }
            fn fault_count(&self) -> usize {
                self.0.fault_count()
            }
            fn shard_count(&self) -> usize {
                self.0.shard_count()
            }
            fn fault_start(&self, shard: usize) -> usize {
                self.0.fault_start(shard)
            }
            fn fetch(
                &self,
                shard: usize,
            ) -> Result<Arc<StoredDictionary>, crate::source::FetchError> {
                self.0.fetch(shard)
            }
            fn resident(&self, _shard: usize) -> Option<Arc<StoredDictionary>> {
                None
            }
            fn fault_cone(&self, fault: usize) -> Option<&sdd_logic::BitVec> {
                self.0.fault_cone(fault)
            }
        }
        let cold = Cold(source);
        let mut lines = corpus.lines().map(|l| Ok(l.to_owned()));
        let mut out = Vec::new();
        let options = VolumeOptions {
            budget: Budget::max_calls(0).and_deadline(Duration::ZERO),
            ..Default::default()
        };
        let summary = run(&cold, &mut lines, &mut JsonlSink(&mut out), &options).unwrap();
        assert_eq!(summary.error, 1);
        assert_eq!(summary.ok, 0);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"status\":\"error\",\"reason\":\"deadline\""));
    }

    #[test]
    fn transport_errors_abort_the_run() {
        let source = source();
        let mut lines = [
            Ok("dev-0 10/11".to_owned()),
            Err(io::Error::new(io::ErrorKind::UnexpectedEof, "gone")),
        ]
        .into_iter();
        let mut out = Vec::new();
        let result = run(
            &source,
            &mut lines,
            &mut JsonlSink(&mut out),
            &VolumeOptions::default(),
        );
        assert!(result.is_err());
    }
}
