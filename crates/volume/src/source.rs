//! Where device diagnoses get their dictionary shards from.
//!
//! The volume engine is surfaced twice — the `sdd volume` CLI and the
//! serve `VOLUME` verb — and both must produce bit-identical reports. The
//! [`ShardSource`] trait is the seam that makes that hold: the engine's
//! per-device diagnosis, degradation accounting, and report formatting are
//! written once against this trait, and only shard *residency* differs
//! between surfaces (the CLI preloads every shard up front; the server
//! fetches lazily through its LRU registry).

use std::sync::Arc;

use sdd_logic::{BitVec, SddError};
use sdd_store::{DictionaryKind, MmapMode, ShardedReader, StoredDictionary};

use crate::corpus::Shape;

/// A shard that could not be fetched, reduced to the stable one-word
/// reason token that appears in `degraded=` lists and report records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchError {
    /// The [`error_token`] classification.
    pub token: &'static str,
}

impl From<&SddError> for FetchError {
    fn from(error: &SddError) -> Self {
        Self {
            token: error_token(error),
        }
    }
}

/// One-word reason token for a typed error — the shared vocabulary of
/// `degraded=` lists, `ERR` replies, and volume report records.
pub fn error_token(error: &SddError) -> &'static str {
    match error {
        SddError::Io { .. } => "io",
        SddError::ChecksumMismatch { .. } => "checksum",
        SddError::Truncated { .. } => "truncated",
        SddError::UnsupportedVersion { .. } => "version",
        SddError::Invalid { .. } => "invalid",
        SddError::Empty { .. } => "empty",
        SddError::Parse { .. } => "parse",
        SddError::WidthMismatch { .. } => "width",
        SddError::CountMismatch { .. } => "count",
        // `SddError` is non-exhaustive; any future variant is still an error.
        _ => "error",
    }
}

/// A provider of dictionary shards for per-device diagnosis.
///
/// Implementations must be cheap to query repeatedly: [`fetch`]
/// (ShardSource::fetch) is called once per shard per device, and a warm
/// shard should cost a clone of an [`Arc`], not I/O.
pub trait ShardSource: Sync {
    /// Dictionary kind (fixes the observation shape).
    fn kind(&self) -> DictionaryKind;
    /// Number of tests `k`.
    fn tests(&self) -> usize;
    /// Observed outputs `m` per response (0 for pass/fail).
    fn outputs(&self) -> usize;
    /// Total faults `n` across all shards.
    fn fault_count(&self) -> usize;
    /// Number of shards (1 for a whole dictionary).
    fn shard_count(&self) -> usize;
    /// First global fault index shard `shard` covers.
    fn fault_start(&self, shard: usize) -> usize;
    /// Fetches shard `shard`, loading it if necessary.
    ///
    /// # Errors
    ///
    /// The tokenized reason; the engine records it as degraded coverage.
    fn fetch(&self, shard: usize) -> Result<Arc<StoredDictionary>, FetchError>;
    /// Shard `shard` *only if already resident* — what a device whose
    /// budget has expired is still allowed to use (a registry hit is a
    /// clone, not I/O).
    fn resident(&self, shard: usize) -> Option<Arc<StoredDictionary>>;
    /// The output cone of global fault `fault`, when cone information is
    /// available (recorded per shard by `sdd build --shards`, or supplied
    /// per fault). `None` disables cone clustering.
    fn fault_cone(&self, fault: usize) -> Option<&BitVec>;

    /// The corpus shape observations must conform to.
    fn shape(&self) -> Shape {
        Shape {
            kind: self.kind(),
            tests: self.tests(),
            outputs: self.outputs(),
        }
    }
}

/// A single unsharded dictionary, optionally with per-fault output cones.
#[derive(Debug, Clone)]
pub struct WholeSource {
    dictionary: Arc<StoredDictionary>,
    outputs: usize,
    cones: Option<Vec<BitVec>>,
}

impl WholeSource {
    /// Wraps a loaded dictionary.
    pub fn new(dictionary: StoredDictionary) -> Self {
        Self::from_arc(Arc::new(dictionary))
    }

    /// Wraps an already-shared dictionary — what the serve registry hands
    /// out — without cloning the payload.
    pub fn from_arc(dictionary: Arc<StoredDictionary>) -> Self {
        let outputs = match dictionary.as_ref() {
            StoredDictionary::PassFail(_) => 0,
            StoredDictionary::SameDifferent(d) => d.sizes().outputs as usize,
            StoredDictionary::Full(d) => d.matrix().output_count(),
        };
        Self {
            dictionary,
            outputs,
            cones: None,
        }
    }

    /// Attaches per-fault output cones (index-aligned with the
    /// dictionary's fault list), enabling cone clustering.
    ///
    /// # Errors
    ///
    /// [`SddError::CountMismatch`] when `cones` does not cover every fault.
    pub fn with_cones(mut self, cones: Vec<BitVec>) -> Result<Self, SddError> {
        if cones.len() != self.dictionary.fault_count() {
            return Err(SddError::CountMismatch {
                context: "per-fault cones",
                expected: self.dictionary.fault_count(),
                actual: cones.len(),
            });
        }
        self.cones = Some(cones);
        Ok(self)
    }
}

impl ShardSource for WholeSource {
    fn kind(&self) -> DictionaryKind {
        self.dictionary.kind()
    }
    fn tests(&self) -> usize {
        self.dictionary.test_count()
    }
    fn outputs(&self) -> usize {
        self.outputs
    }
    fn fault_count(&self) -> usize {
        self.dictionary.fault_count()
    }
    fn shard_count(&self) -> usize {
        1
    }
    fn fault_start(&self, _shard: usize) -> usize {
        0
    }
    fn fetch(&self, _shard: usize) -> Result<Arc<StoredDictionary>, FetchError> {
        Ok(Arc::clone(&self.dictionary))
    }
    fn resident(&self, _shard: usize) -> Option<Arc<StoredDictionary>> {
        Some(Arc::clone(&self.dictionary))
    }
    fn fault_cone(&self, fault: usize) -> Option<&BitVec> {
        self.cones.as_ref().and_then(|cones| cones.get(fault))
    }
}

struct PreloadedShard {
    start: usize,
    cone: BitVec,
    dictionary: Result<Arc<StoredDictionary>, FetchError>,
}

/// A sharded set with every shard loaded up front — the `sdd volume` CLI
/// source. A shard that fails to load is remembered by reason and yields
/// degraded (`PARTIAL`) device records for the whole run, matching the
/// degraded-serving contract.
pub struct PreloadedShards {
    kind: DictionaryKind,
    tests: usize,
    outputs: usize,
    faults: usize,
    shards: Vec<PreloadedShard>,
}

impl PreloadedShards {
    /// Opens a `.sddm` manifest and loads every shard it names.
    ///
    /// # Errors
    ///
    /// Only manifest-level failures (unreadable or corrupt `.sddm`) are
    /// fatal; per-shard failures degrade instead.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Self, SddError> {
        Self::open_with(path, MmapMode::Off)
    }

    /// [`open`](Self::open) with an explicit byte-ownership mode: under a
    /// mapped mode each shard's bytes come straight from the page cache
    /// during decode — a run over a shard set larger than RAM never holds
    /// more than one shard's encoded bytes mapped at a time. The decoded
    /// shards (and every device record) are byte-identical in every mode.
    ///
    /// # Errors
    ///
    /// As [`open`](Self::open).
    pub fn open_with(path: impl AsRef<std::path::Path>, mode: MmapMode) -> Result<Self, SddError> {
        let reader = ShardedReader::open_with(path, mode)?;
        let manifest = reader.manifest();
        let shards = manifest
            .shards
            .iter()
            .enumerate()
            .map(|(index, record)| PreloadedShard {
                start: record.fault_start,
                cone: record.cone.clone(),
                dictionary: reader
                    .load_shard(index)
                    .map(Arc::new)
                    .map_err(|e| FetchError::from(&e)),
            })
            .collect();
        Ok(Self {
            kind: manifest.kind,
            tests: manifest.tests,
            outputs: manifest.outputs,
            faults: manifest.faults,
            shards,
        })
    }
}

impl ShardSource for PreloadedShards {
    fn kind(&self) -> DictionaryKind {
        self.kind
    }
    fn tests(&self) -> usize {
        self.tests
    }
    fn outputs(&self) -> usize {
        self.outputs
    }
    fn fault_count(&self) -> usize {
        self.faults
    }
    fn shard_count(&self) -> usize {
        self.shards.len()
    }
    fn fault_start(&self, shard: usize) -> usize {
        self.shards[shard].start
    }
    fn fetch(&self, shard: usize) -> Result<Arc<StoredDictionary>, FetchError> {
        self.shards[shard].dictionary.clone()
    }
    fn resident(&self, shard: usize) -> Option<Arc<StoredDictionary>> {
        self.shards[shard].dictionary.clone().ok()
    }
    fn fault_cone(&self, fault: usize) -> Option<&BitVec> {
        // Shards tile the fault list in ascending order: the owning shard
        // is the last one starting at or before `fault`.
        let index = self
            .shards
            .partition_point(|shard| shard.start <= fault)
            .checked_sub(1)?;
        Some(&self.shards[index].cone)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_core::SameDifferentDictionary;

    fn sd() -> StoredDictionary {
        StoredDictionary::SameDifferent(SameDifferentDictionary::with_fault_free_baselines(
            &sdd_core::example::paper_example(),
        ))
    }

    #[test]
    fn whole_source_exposes_the_dictionary_dimensions() {
        let source = WholeSource::new(sd());
        assert_eq!(source.kind(), DictionaryKind::SameDifferent);
        assert_eq!(source.shard_count(), 1);
        assert_eq!(source.fault_count(), 4);
        assert!(source.outputs() > 0);
        assert!(source.fetch(0).is_ok());
        assert!(source.resident(0).is_some());
        assert!(source.fault_cone(0).is_none());
    }

    #[test]
    fn whole_source_cones_must_cover_every_fault() {
        let source = WholeSource::new(sd());
        assert!(matches!(
            source.clone().with_cones(vec![BitVec::zeros(2)]),
            Err(SddError::CountMismatch { .. })
        ));
        let cones = vec![BitVec::zeros(2); 4];
        let source = source.with_cones(cones).unwrap();
        assert!(source.fault_cone(3).is_some());
        assert!(source.fault_cone(4).is_none());
    }
}
