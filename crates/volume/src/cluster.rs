//! Defect clustering: turning many per-device verdicts into one corpus
//! verdict.
//!
//! Systematic defects show up as the *same fault* — or at least the same
//! output cone — recurring across die; random defects scatter. The
//! [`Aggregator`] folds every diagnosed device's top candidate into two
//! cluster families:
//!
//! - **fault clusters** — keyed by the device's top candidate fault (the
//!   lowest-index fault among those tied at the minimum mismatch count,
//!   the same deterministic tiebreak
//!   [`sdd_core::diagnose::merge_shard_rankings`] documents);
//! - **cone clusters** — keyed by the top candidate's output cone
//!   (computed via `OutputCones` at build time and recorded per shard, or
//!   supplied per fault), which groups distinct-but-co-located faults.
//!
//! Each cluster carries a recurrence count and a confidence-weighted score
//! (the sum of the member devices' top-candidate confidences, accumulated
//! in corpus order so the float total is deterministic). The
//! classification rule: a cluster is **systematic** when its count reaches
//! `max(2, ceil(threshold × diagnosed devices))`, else **random** — two
//! sightings are never enough on a large corpus, and a single sighting is
//! never systematic.

use std::collections::{BTreeMap, BTreeSet};

use sdd_logic::BitVec;

/// Fixed minimum recurrence for a systematic classification.
pub const MIN_SYSTEMATIC_COUNT: usize = 2;

/// Devices clustered on one candidate fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCluster {
    /// Global fault index (position in the dictionary's fault list).
    pub fault: usize,
    /// Devices whose top candidate this fault is.
    pub count: usize,
    /// Sum of those devices' top-candidate confidences.
    pub score: f64,
    /// `count >= systematic_at`?
    pub systematic: bool,
}

/// Devices clustered on one output cone.
#[derive(Debug, Clone, PartialEq)]
pub struct ConeCluster {
    /// The cone as a `0`/`1` output bitmap string (output 0 first).
    pub cone: String,
    /// Devices whose top candidate lies in this cone.
    pub count: usize,
    /// Sum of those devices' top-candidate confidences.
    pub score: f64,
    /// The distinct member faults, ascending.
    pub faults: Vec<usize>,
    /// `count >= systematic_at`?
    pub systematic: bool,
}

/// The classification threshold derived from a corpus.
///
/// `systematic_at = max(2, ceil(threshold * diagnosed))`.
pub fn systematic_at(threshold: f64, diagnosed: usize) -> usize {
    let frac = (threshold * diagnosed as f64).ceil();
    // A non-finite or negative threshold cannot raise the floor.
    let frac = if frac.is_finite() && frac > 0.0 {
        frac as usize
    } else {
        0
    };
    frac.max(MIN_SYSTEMATIC_COUNT)
}

/// Streaming cluster accumulator: one [`add`](Aggregator::add) per
/// diagnosed device, in corpus order, then [`finish`](Aggregator::finish).
#[derive(Debug, Default)]
pub struct Aggregator {
    faults: BTreeMap<usize, (usize, f64)>,
    cones: BTreeMap<String, (usize, f64, BTreeSet<usize>)>,
}

impl Aggregator {
    /// A fresh, empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one diagnosed device in: its top candidate `fault`, that
    /// candidate's `confidence`, and the fault's output `cone` when known.
    pub fn add(&mut self, fault: usize, confidence: f64, cone: Option<&BitVec>) {
        let entry = self.faults.entry(fault).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += confidence;
        if let Some(cone) = cone {
            let entry = self
                .cones
                .entry(cone.to_string())
                .or_insert_with(|| (0, 0.0, BTreeSet::new()));
            entry.0 += 1;
            entry.1 += confidence;
            entry.2.insert(fault);
        }
    }

    /// Ranks and classifies the clusters.
    ///
    /// Order is total and deterministic: count descending, then score
    /// descending, then fault index (or cone string) ascending.
    pub fn finish(self, threshold: f64, diagnosed: usize) -> Clusters {
        let systematic_at = systematic_at(threshold, diagnosed);
        let mut faults: Vec<FaultCluster> = self
            .faults
            .into_iter()
            .map(|(fault, (count, score))| FaultCluster {
                fault,
                count,
                score,
                systematic: count >= systematic_at,
            })
            .collect();
        faults.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then(b.score.total_cmp(&a.score))
                .then(a.fault.cmp(&b.fault))
        });
        let mut cones: Vec<ConeCluster> = self
            .cones
            .into_iter()
            .map(|(cone, (count, score, members))| ConeCluster {
                cone,
                count,
                score,
                faults: members.into_iter().collect(),
                systematic: count >= systematic_at,
            })
            .collect();
        cones.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then(b.score.total_cmp(&a.score))
                .then(a.cone.cmp(&b.cone))
        });
        Clusters {
            systematic_at,
            faults,
            cones,
        }
    }
}

/// The ranked, classified output of an [`Aggregator`].
#[derive(Debug, Clone, PartialEq)]
pub struct Clusters {
    /// The recurrence count at or above which a cluster is systematic.
    pub systematic_at: usize,
    /// Fault clusters, most-recurrent first.
    pub faults: Vec<FaultCluster>,
    /// Cone clusters, most-recurrent first (empty without cone info).
    pub cones: Vec<ConeCluster>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_rule_has_a_floor_of_two() {
        assert_eq!(systematic_at(0.05, 0), 2);
        assert_eq!(systematic_at(0.05, 10), 2);
        assert_eq!(systematic_at(0.05, 100), 5);
        assert_eq!(systematic_at(0.0, 1_000_000), 2);
        assert_eq!(systematic_at(f64::NAN, 100), 2);
    }

    #[test]
    fn clusters_rank_and_classify_deterministically() {
        let cone_a: BitVec = "1100".parse().unwrap();
        let cone_b: BitVec = "0011".parse().unwrap();
        let mut agg = Aggregator::new();
        // Fault 7 recurs 3×, faults 1 and 2 once each; 1 and 2 share cone B.
        for confidence in [0.9, 0.8, 0.7] {
            agg.add(7, confidence, Some(&cone_a));
        }
        agg.add(2, 0.6, Some(&cone_b));
        agg.add(1, 0.6, Some(&cone_b));
        let clusters = agg.finish(0.05, 5);
        assert_eq!(clusters.systematic_at, 2);
        let faults: Vec<(usize, usize, bool)> = clusters
            .faults
            .iter()
            .map(|c| (c.fault, c.count, c.systematic))
            .collect();
        // Count 1 ties between faults 1 and 2 with equal scores: the fault
        // index breaks the tie.
        assert_eq!(faults, vec![(7, 3, true), (1, 1, false), (2, 1, false)]);
        // Cone B clusters the two random-looking faults into one
        // systematic signal: same cone recurring across die.
        assert_eq!(clusters.cones[0].count, 3);
        assert_eq!(clusters.cones[1].cone, "0011");
        assert_eq!(clusters.cones[1].faults, vec![1, 2]);
        assert!(clusters.cones[1].systematic);
        assert!((clusters.faults[0].score - 2.4).abs() < 1e-12);
    }

    #[test]
    fn without_cones_the_cone_family_is_empty() {
        let mut agg = Aggregator::new();
        agg.add(3, 0.5, None);
        let clusters = agg.finish(0.1, 1);
        assert!(clusters.cones.is_empty());
        assert_eq!(clusters.faults.len(), 1);
    }
}
