//! Diagnosis across sharded dictionaries.
//!
//! A sharded set (see [`sdd_store::write_sharded`]) cuts one dictionary
//! into contiguous fault ranges; this module runs the masked-diagnosis
//! ladder over every shard and merges the per-shard rankings into one
//! report that is bit-identical to diagnosing against the unsharded
//! dictionary. All shards must be scored: signatures compare against
//! shard-global baselines, so a fault outside the failing outputs' cones
//! can still be a zero-mismatch candidate — cones prioritize *load order*
//! (see the serve layer), never skip scoring.
//!
//! # Example
//!
//! ```
//! use sdd_core::PassFailDictionary;
//! use sdd_logic::MaskedBitVec;
//! use sdd_store::{slice_dictionary, StoredDictionary};
//! use sdd_volume::shard::{diagnose_sharded, ShardObservation};
//!
//! let whole = StoredDictionary::PassFail(PassFailDictionary::build(
//!     &sdd_core::example::paper_example(),
//! ));
//! let lo = slice_dictionary(&whole, 0..2)?;
//! let hi = slice_dictionary(&whole, 2..4)?;
//! let observed = MaskedBitVec::from_known("01".parse()?);
//! let merged = diagnose_sharded(
//!     &[(0, &lo), (2, &hi)],
//!     ShardObservation::Signature(&observed),
//! )?;
//! let unsharded =
//!     diagnose_sharded(&[(0, &whole)], ShardObservation::Signature(&observed))?;
//! assert_eq!(merged, unsharded);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use sdd_core::diagnose::{
    match_signatures_masked_into, merge_shard_rankings, NoisyDiagnosisReport, ScoredCandidate,
};
use sdd_logic::{BitVec, MaskedBitVec, SddError};
use sdd_store::StoredDictionary;

/// One parsed observation, in the shape the dictionary kind expects —
/// mirroring the serve protocol: pass/fail dictionaries take one `k`-bit
/// signature, same/different and full dictionaries take `k` per-test
/// `m`-bit output responses.
#[derive(Debug, Clone, Copy)]
pub enum ShardObservation<'a> {
    /// A `k`-bit (possibly partial) pass/fail signature.
    Signature(&'a MaskedBitVec),
    /// Per-test output responses, one per test.
    Responses(&'a [MaskedBitVec]),
}

/// Diagnoses one observation against a set of dictionary shards, each given
/// as `(first global fault index, slice)`, and merges the per-shard
/// rankings into a single globally-ranked [`NoisyDiagnosisReport`] whose
/// candidate indices are global fault positions.
///
/// For shards produced by slicing one dictionary into ranges that tile the
/// fault list, the result is bit-identical to diagnosing the unsharded
/// dictionary (same ranking, same best set, same quality ladder rung).
///
/// # Errors
///
/// [`SddError::Invalid`] when the observation shape does not fit the shard
/// kind or the shards mix kinds; [`SddError::Empty`] for no shards; plus
/// every per-kind `diagnose_masked` error.
pub fn diagnose_sharded(
    shards: &[(usize, &StoredDictionary)],
    observation: ShardObservation<'_>,
) -> Result<NoisyDiagnosisReport, SddError> {
    let Some(&(_, first)) = shards.first() else {
        return Err(SddError::Empty {
            context: "dictionary shards",
        });
    };
    let mut rankings: Vec<(usize, Vec<ScoredCandidate>)> = Vec::with_capacity(shards.len());
    let fully_known = match (observation, first) {
        (ShardObservation::Signature(observed), StoredDictionary::PassFail(_)) => {
            for &(offset, shard) in shards {
                let StoredDictionary::PassFail(d) = shard else {
                    return Err(SddError::invalid("shards mix dictionary kinds"));
                };
                let mut ranking = Vec::new();
                match_signatures_masked_into(d.signatures(), observed, &mut ranking)?;
                rankings.push((offset, ranking));
            }
            observed.is_fully_known()
        }
        (ShardObservation::Responses(responses), StoredDictionary::SameDifferent(first)) => {
            // Baselines are shard-global (each shard carries the full set),
            // so the observation encodes identically through any shard.
            let encoded = first.encode_observed_masked(responses)?;
            for &(offset, shard) in shards {
                let StoredDictionary::SameDifferent(d) = shard else {
                    return Err(SddError::invalid("shards mix dictionary kinds"));
                };
                let mut ranking = Vec::new();
                match_signatures_masked_into(d.signatures(), &encoded, &mut ranking)?;
                rankings.push((offset, ranking));
            }
            encoded.is_fully_known()
        }
        (ShardObservation::Responses(responses), StoredDictionary::Full(_)) => {
            for &(offset, shard) in shards {
                let StoredDictionary::Full(d) = shard else {
                    return Err(SddError::invalid("shards mix dictionary kinds"));
                };
                rankings.push((offset, d.diagnose_masked(responses)?.ranking));
            }
            responses.iter().all(MaskedBitVec::is_fully_known)
        }
        (ShardObservation::Signature(_), _) => {
            return Err(SddError::invalid(
                "signature observations fit pass/fail dictionaries; \
                 this kind takes per-test responses",
            ));
        }
        (ShardObservation::Responses(_), StoredDictionary::PassFail(_)) => {
            return Err(SddError::invalid(
                "pass/fail dictionaries take a signature observation, not per-test responses",
            ));
        }
    };
    let slices: Vec<(usize, &[ScoredCandidate])> = rankings
        .iter()
        .map(|(offset, ranking)| (*offset, ranking.as_slice()))
        .collect();
    merge_shard_rankings(&slices, fully_known)
}

/// The failing outputs of an observation: bit `o` is set when any test's
/// observed output `o` is known and disagrees with the dictionary's
/// reference response for that test (the baseline for same/different, the
/// fault-free response for full dictionaries). This is what gets
/// intersected with shard cones to prioritize lazy loads.
///
/// # Errors
///
/// [`SddError::Invalid`] for pass/fail dictionaries (their observations
/// carry no per-output information), [`SddError::CountMismatch`] /
/// [`SddError::WidthMismatch`] when the responses do not line up.
pub fn failing_outputs(
    dictionary: &StoredDictionary,
    responses: &[MaskedBitVec],
) -> Result<BitVec, SddError> {
    let (tests, outputs) = match dictionary {
        StoredDictionary::PassFail(_) => {
            return Err(SddError::invalid(
                "pass/fail observations carry no per-output information",
            ));
        }
        StoredDictionary::SameDifferent(d) => (d.test_count(), d.sizes().outputs as usize),
        StoredDictionary::Full(d) => (d.test_count(), d.matrix().output_count()),
    };
    if responses.len() != tests {
        return Err(SddError::CountMismatch {
            context: "responses per test",
            expected: tests,
            actual: responses.len(),
        });
    }
    let mut failing = BitVec::zeros(outputs);
    for (test, observed) in responses.iter().enumerate() {
        if observed.len() != outputs {
            return Err(SddError::WidthMismatch {
                context: "observed response width",
                expected: outputs,
                actual: observed.len(),
            });
        }
        let reference = match dictionary {
            StoredDictionary::SameDifferent(d) => d.baseline(test).clone(),
            StoredDictionary::Full(d) => d.matrix().good_response(test).clone(),
            StoredDictionary::PassFail(_) => unreachable!("rejected above"),
        };
        for output in 0..outputs {
            if observed.bit(output) == Some(!reference.bit(output)) {
                failing.set(output, true);
            }
        }
    }
    Ok(failing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_core::{PassFailDictionary, SameDifferentDictionary};

    fn sd() -> StoredDictionary {
        let matrix = sdd_core::example::paper_example();
        StoredDictionary::SameDifferent(SameDifferentDictionary::with_fault_free_baselines(&matrix))
    }

    #[test]
    fn sharded_same_different_matches_unsharded() {
        let whole = sd();
        let lo = sdd_store::slice_dictionary(&whole, 0..1).unwrap();
        let hi = sdd_store::slice_dictionary(&whole, 1..4).unwrap();
        let StoredDictionary::SameDifferent(d) = &whole else {
            unreachable!()
        };
        // Observed responses of fault 2 with one masked bit.
        let mut responses: Vec<MaskedBitVec> = (0..d.test_count())
            .map(|t| {
                let mut r = MaskedBitVec::from_known(d.baseline(t).clone());
                if d.signature(2).bit(t) {
                    r.flip(0);
                }
                r
            })
            .collect();
        responses[0].mask(0);
        let unsharded =
            diagnose_sharded(&[(0, &whole)], ShardObservation::Responses(&responses)).unwrap();
        let merged = diagnose_sharded(
            &[(0, &lo), (1, &hi)],
            ShardObservation::Responses(&responses),
        )
        .unwrap();
        assert_eq!(merged, unsharded);
    }

    #[test]
    fn observation_shape_must_fit_the_kind() {
        let pf = StoredDictionary::PassFail(PassFailDictionary::build(
            &sdd_core::example::paper_example(),
        ));
        let sig = MaskedBitVec::unknown(2);
        assert!(matches!(
            diagnose_sharded(&[(0, &sd())], ShardObservation::Signature(&sig)),
            Err(SddError::Invalid { .. })
        ));
        assert!(matches!(
            diagnose_sharded(&[(0, &pf)], ShardObservation::Responses(&[])),
            Err(SddError::Invalid { .. })
        ));
        assert!(matches!(
            diagnose_sharded(&[], ShardObservation::Signature(&sig)),
            Err(SddError::Empty { .. })
        ));
        assert!(matches!(
            diagnose_sharded(&[(0, &pf), (2, &sd())], ShardObservation::Signature(&sig)),
            Err(SddError::Invalid { .. })
        ));
    }

    #[test]
    fn failing_outputs_reflect_known_disagreements() {
        let whole = sd();
        let StoredDictionary::SameDifferent(d) = &whole else {
            unreachable!()
        };
        let mut responses: Vec<MaskedBitVec> = (0..d.test_count())
            .map(|t| MaskedBitVec::from_known(d.baseline(t).clone()))
            .collect();
        let clean = failing_outputs(&whole, &responses).unwrap();
        assert!(!clean.any(), "agreeing observation fails nothing");
        responses[1].flip(1);
        let failing = failing_outputs(&whole, &responses).unwrap();
        assert!(failing.bit(1) && !failing.bit(0));
        // Masking the flipped bit removes the evidence.
        responses[1].mask(1);
        let masked = failing_outputs(&whole, &responses).unwrap();
        assert!(!masked.any());
        let pf = StoredDictionary::PassFail(PassFailDictionary::build(
            &sdd_core::example::paper_example(),
        ));
        assert!(failing_outputs(&pf, &responses).is_err());
    }
}
