//! Regeneration of the paper's Table 6.

use std::fmt;
use std::time::Instant;

use same_different::Experiment;
use sdd_atpg::AtpgOptions;
use sdd_core::{replace_baselines, select_baselines, DictionarySizes, Procedure1Options};

/// Which of the paper's two test-set types a row uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestSetType {
    /// A diagnostic test set (`diag` in Table 6).
    Diagnostic,
    /// A 10-detection test set (`10det` in Table 6).
    TenDetect,
}

impl fmt::Display for TestSetType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TestSetType::Diagnostic => "diag",
            TestSetType::TenDetect => "10det",
        })
    }
}

/// Configuration of a Table 6 run.
#[derive(Debug, Clone)]
pub struct Table6Config {
    /// Seed for circuit generation, ATPG and baseline selection.
    pub seed: u64,
    /// The paper's `LOWER` constant (`Some(10)` in the paper).
    pub lower: Option<usize>,
    /// The paper's `CALLS_1` constant (100 in the paper; smaller values
    /// trade resolution for speed on big circuits).
    pub calls1: usize,
    /// Worker threads for fault simulation and Procedure 1 restarts. Rows
    /// are identical for every value; the default stays serial so library
    /// users opt into threads explicitly (the `table6` binary defaults to
    /// all hardware threads).
    pub jobs: usize,
    /// ATPG knobs.
    pub atpg: AtpgOptions,
}

impl Default for Table6Config {
    fn default() -> Self {
        Self {
            seed: 1,
            lower: Some(10),
            calls1: 100,
            jobs: 1,
            atpg: AtpgOptions::default(),
        }
    }
}

/// One row of Table 6.
#[derive(Debug, Clone)]
pub struct Table6Row {
    /// Circuit name.
    pub circuit: String,
    /// Test-set type.
    pub ttype: TestSetType,
    /// Number of tests `|T|`.
    pub tests: usize,
    /// Collapsed faults `n`.
    pub faults: usize,
    /// Observed outputs `m`.
    pub outputs: usize,
    /// Dictionary sizes in bits.
    pub sizes: DictionarySizes,
    /// Indistinguished pairs: full dictionary.
    pub indist_full: u64,
    /// Indistinguished pairs: pass/fail dictionary.
    pub indist_pass_fail: u64,
    /// Indistinguished pairs: same/different after Procedure 1
    /// (random-order restarts) — the paper's `s/d rand` column.
    pub indist_sd_rand: u64,
    /// Indistinguished pairs: after Procedure 2 — the paper's `s/d repl`
    /// column (equal to `rand` when replacement finds nothing).
    pub indist_sd_repl: u64,
    /// Procedure 1 calls actually performed.
    pub procedure1_calls: usize,
    /// Wall-clock seconds for the whole row.
    pub seconds: f64,
}

impl Table6Row {
    /// Formats the row like the paper's table (sizes then resolutions).
    pub fn paper_line(&self) -> String {
        let repl = if self.indist_sd_repl < self.indist_sd_rand {
            self.indist_sd_repl.to_string()
        } else {
            // The paper omits the repl entry when Procedure 2 does not
            // improve on Procedure 1.
            "-".to_owned()
        };
        format!(
            "{:<7} {:<6} {:>5} {:>12} {:>10} {:>10} {:>9} {:>8} {:>8} {:>8}  ({:.1}s, {} P1 calls)",
            self.circuit,
            self.ttype,
            self.tests,
            self.sizes.full,
            self.sizes.pass_fail,
            self.sizes.same_different,
            self.indist_full,
            self.indist_pass_fail,
            self.indist_sd_rand,
            repl,
            self.seconds,
            self.procedure1_calls,
        )
    }

    /// The table header matching [`paper_line`](Self::paper_line).
    pub fn header() -> String {
        format!(
            "{:<7} {:<6} {:>5} {:>12} {:>10} {:>10} {:>9} {:>8} {:>8} {:>8}",
            "circuit",
            "Ttype",
            "|T|",
            "size:full",
            "p/f",
            "s/d",
            "ind:full",
            "p/f",
            "s/d-rnd",
            "s/d-rpl"
        )
    }
}

/// Runs one row of Table 6: generate the circuit, generate the test set,
/// fault-simulate, and build/evaluate all three dictionaries.
///
/// Returns `None` for unknown circuit names.
pub fn run_row(circuit: &str, ttype: TestSetType, config: &Table6Config) -> Option<Table6Row> {
    let start = Instant::now();
    let exp = Experiment::iscas89(circuit, config.seed)?;
    let atpg = AtpgOptions {
        seed: config.seed,
        ..config.atpg.clone()
    };
    let tests = match ttype {
        TestSetType::Diagnostic => exp.diagnostic_tests(&atpg),
        TestSetType::TenDetect => exp.detection_tests(10, &atpg),
    };
    let matrix = exp.simulate_jobs(&tests.tests, config.jobs);

    let indist_full = matrix.full_partition().indistinguished_pairs();
    let indist_pass_fail = matrix.pass_fail_partition().indistinguished_pairs();

    let mut selection = select_baselines(
        &matrix,
        &Procedure1Options {
            lower: config.lower,
            calls1: config.calls1,
            seed: config.seed,
            jobs: config.jobs,
            ..Procedure1Options::default()
        },
    );
    let indist_sd_rand = selection.indistinguished_pairs;
    let indist_sd_repl = replace_baselines(&matrix, &mut selection.baselines);

    Some(Table6Row {
        circuit: circuit.to_owned(),
        ttype,
        tests: tests.len(),
        faults: exp.faults().len(),
        outputs: exp.view().outputs().len(),
        sizes: DictionarySizes::new(
            tests.len() as u64,
            exp.faults().len() as u64,
            exp.view().outputs().len() as u64,
        ),
        indist_full,
        indist_pass_fail,
        indist_sd_rand,
        indist_sd_repl,
        procedure1_calls: selection.calls,
        seconds: start.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_fast_row_is_internally_consistent() {
        let config = Table6Config {
            calls1: 3,
            atpg: AtpgOptions {
                max_random_blocks: 8,
                ..AtpgOptions::default()
            },
            ..Table6Config::default()
        };
        let row = run_row("s208", TestSetType::Diagnostic, &config).unwrap();
        assert_eq!(row.circuit, "s208");
        assert!(row.tests > 0);
        assert_eq!(row.sizes.pass_fail, row.tests as u64 * row.faults as u64);
        assert!(row.indist_full <= row.indist_sd_repl);
        assert!(row.indist_sd_repl <= row.indist_sd_rand);
        assert!(row.indist_sd_rand <= row.indist_pass_fail);
        assert!(row.paper_line().contains("s208"));
        assert!(Table6Row::header().contains("Ttype"));
    }

    #[test]
    fn unknown_circuit_yields_none() {
        // "c6288" is a *known* ISCAS'85 profile, so it must not be used
        // here: a row for it is expensive but valid.
        assert!(run_row("s9999", TestSetType::Diagnostic, &Table6Config::default()).is_none());
    }
}
