//! Chaos harness: seeded fault injection against a live diagnosis server.
//!
//! ```text
//! cargo run -p sdd-bench --release --bin chaos -- \
//!     [--circuit s298] [--seed 7] [--dir DIR] [--deadline-secs 120]
//! ```
//!
//! Builds a small dictionary (whole `.sddb` plus a cone-sharded `.sddm`),
//! starts an in-process `sdd serve` with deliberately tight limits, and
//! replays a scripted failure schedule against it:
//!
//! 1. **Torn writes** — partial `*.tmp` staging files at several truncation
//!    points next to the dictionary; the target must stay loadable.
//! 2. **Shard corruption** — a flipped payload byte; `DIAG` must answer
//!    `PARTIAL` with exact fault coverage, then recover after restore.
//! 3. **Shard deletion** — a missing shard file; same degraded contract.
//! 4. **Connection flood** — connections past `max_connections` must be
//!    shed with `OK BUSY`, and service must resume once the flood drains.
//! 5. **Slow loris** — a client dribbling a partial request is cut off at
//!    the idle limit while a concurrent client stays served.
//! 6. **Mid-request disconnect** — clients that vanish before reading
//!    their reply must not wedge workers.
//! 7. **Handler panic** — the env-gated `PANIC` request is contained to an
//!    `ERR` reply on a connection that keeps working.
//! 8. **VOLUME mid-stream disconnect** — a client that promises a corpus
//!    and vanishes mid-stream kills its own connection, not the worker.
//! 9. **Pipeline burst disconnect** — a client writes a burst of pipelined
//!    requests in one send, reads only the first replies, and vanishes;
//!    the queued remainder must be reclaimed without wedging a worker.
//! 10. **Mapped-shard truncation/replacement** — a shard file truncated in
//!     place (and then swapped for a sibling shard's bytes) under a live
//!     server whose dictionaries are memory-mapped (the default on Linux).
//!     Resident decoded shards must keep serving the exact baseline; once
//!     residency resets, the verdict must degrade to the `PARTIAL`
//!     contract with a typed reason — never a SIGBUS, never a crashed
//!     worker.
//!
//! Every well-formed request must come back `OK`, `PARTIAL`, `BUSY`, or
//! `ERR`; the server must never hang (a watchdog thread aborts the run at
//! the global deadline) and must drain cleanly at `SHUTDOWN`. Emits one
//! JSON summary line on stdout; exits nonzero when any check fails.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use same_different::serve::{serve, ServeConfig};
use same_different::store::{self, StoredDictionary};
use same_different::Experiment;
use sdd_core::Procedure1Options;
use sdd_logic::{BitVec, Prng};

/// Per-read socket timeout for harness clients: a server that stops
/// answering turns into a typed check failure, not a hang.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Server limits the schedule is calibrated against.
const WORKERS: usize = 2;
const MAX_CONNECTIONS: usize = 6;
const IDLE_TIMEOUT: Duration = Duration::from_millis(1000);
const WRITE_TIMEOUT: Duration = Duration::from_secs(2);

fn main() {
    let mut circuit = "s298".to_owned();
    let mut seed: u64 = 7;
    let mut dir: Option<PathBuf> = None;
    let mut deadline = Duration::from_secs(120);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match arg.as_str() {
            "--circuit" => circuit = value("--circuit"),
            "--seed" => seed = value("--seed").parse().expect("bad --seed"),
            "--dir" => dir = Some(PathBuf::from(value("--dir"))),
            "--deadline-secs" => {
                deadline = Duration::from_secs(value("--deadline-secs").parse().expect("bad secs"));
            }
            other => panic!("unknown option {other:?}"),
        }
    }
    let dir = dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("sdd-chaos-{seed}-{}", std::process::id()))
    });
    std::fs::create_dir_all(&dir).expect("create scratch dir");

    // The watchdog is the deadlock detector: if the schedule has not
    // finished by the deadline, something wedged — report and abort.
    let started = Instant::now();
    std::thread::spawn(move || {
        std::thread::sleep(deadline);
        eprintln!("chaos: global deadline {deadline:?} exceeded — server or harness wedged");
        std::process::exit(2);
    });

    // Opt the server into the PANIC test hook for failure class 7.
    std::env::set_var("SDD_SERVE_TEST_PANIC", "1");

    let mut harness = Harness::new(&circuit, seed, &dir);
    harness.run();
    let failed = harness.finish(started.elapsed());
    let _ = std::fs::remove_dir_all(&dir);
    if failed > 0 {
        std::process::exit(1);
    }
}

/// One line-protocol connection with bounded reads.
struct Conn {
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn connect(addr: std::net::SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT))?;
        Ok(Self {
            reader: BufReader::new(stream),
        })
    }

    /// Sends raw bytes without a trailing newline (the loris primitive).
    fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let stream = self.reader.get_mut();
        stream.write_all(bytes)?;
        stream.flush()
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end().to_owned())
    }

    fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.send_raw(format!("{line}\n").as_bytes())?;
        self.read_line()
    }
}

struct Harness {
    seed: u64,
    circuit: String,
    dir: PathBuf,
    addr: std::net::SocketAddr,
    handle: Option<same_different::serve::ServerHandle>,
    manifest: store::ShardManifest,
    whole_path: PathBuf,
    manifest_path: PathBuf,
    /// `DIAG` observation strings (per-test responses, slash-joined).
    observations: Vec<String>,
    total_faults: usize,
    checks: usize,
    failures: Vec<String>,
    busy_seen: u64,
    partial_seen: u64,
}

impl Harness {
    fn new(circuit: &str, seed: u64, dir: &Path) -> Self {
        eprintln!("chaos: building {circuit} dictionary set (seed {seed})");
        let exp = Experiment::iscas89(circuit, seed)
            .unwrap_or_else(|| panic!("unknown circuit {circuit:?}"));
        let tests = exp.diagnostic_tests(&Default::default());
        let suite = exp.build_dictionaries(
            &tests.tests,
            &Procedure1Options {
                calls1: 2,
                ..Default::default()
            },
        );
        let dictionary = StoredDictionary::SameDifferent(suite.same_different);
        let total_faults = dictionary.fault_count();

        let whole_path = dir.join(format!("{circuit}.sddb"));
        store::save(&whole_path, &dictionary).expect("save whole dictionary");

        let cones = same_different::sim::OutputCones::compute(exp.circuit(), exp.view());
        let ranges = cones.shard_ranges(exp.universe(), exp.faults(), 3);
        let shard_cones: Vec<BitVec> = ranges
            .iter()
            .map(|r| cones.shard_cone(exp.universe(), exp.faults(), r.clone()))
            .collect();
        let manifest_path = dir.join(format!("{circuit}.sddm"));
        let manifest =
            store::write_sharded(&manifest_path, &dictionary, &ranges, Some(&shard_cones))
                .expect("write sharded dictionary");

        // A seeded sample of injected-fault observations to diagnose.
        let mut rng = Prng::seed_from_u64(seed);
        let observations = (0..4)
            .map(|_| {
                let position = rng.gen_range(0..exp.faults().len());
                let fault = exp.universe().fault(exp.faults()[position]);
                tests
                    .tests
                    .iter()
                    .map(|test| {
                        same_different::sim::reference::faulty_response(
                            exp.circuit(),
                            exp.view(),
                            fault,
                            test,
                        )
                        .to_string()
                    })
                    .collect::<Vec<_>>()
                    .join("/")
            })
            .collect();

        let config = ServeConfig {
            workers: WORKERS,
            max_connections: MAX_CONNECTIONS,
            idle_timeout: IDLE_TIMEOUT,
            write_timeout: WRITE_TIMEOUT,
            ..ServeConfig::default()
        };
        let handle = serve(&config).expect("bind chaos server");
        let addr = handle.addr();
        eprintln!(
            "chaos: serving on {addr} (workers={WORKERS} max_conns={MAX_CONNECTIONS} idle={IDLE_TIMEOUT:?})"
        );
        Self {
            seed,
            circuit: circuit.to_owned(),
            dir: dir.to_path_buf(),
            addr,
            handle: Some(handle),
            manifest,
            whole_path,
            manifest_path,
            observations,
            total_faults,
            checks: 0,
            failures: Vec::new(),
            busy_seen: 0,
            partial_seen: 0,
        }
    }

    fn check(&mut self, ok: bool, what: &str, detail: &str) {
        self.checks += 1;
        if !ok {
            eprintln!("chaos: FAIL {what}: {detail}");
            self.failures.push(format!("{what}: {detail}"));
        }
    }

    fn connect(&self) -> Conn {
        Conn::connect(self.addr).expect("connect to chaos server")
    }

    /// A fresh connection that round-trips a request, retrying while the
    /// pool drains a previous phase's backlog.
    fn probe(&mut self, what: &str) {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let reply = self.connect().request("STATS");
            match reply {
                Ok(r) if r.starts_with("OK STATS") => {
                    self.check(true, what, "");
                    return;
                }
                Ok(r) if r.starts_with("OK BUSY") => {}
                Ok(r) => {
                    self.check(false, what, &format!("unexpected reply {r:?}"));
                    return;
                }
                Err(_) => {}
            }
            if Instant::now() >= deadline {
                self.check(false, what, "no OK STATS within 10s");
                return;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    fn run(&mut self) {
        let baseline = self.phase_load_and_baseline();
        self.phase_torn_writes(&baseline);
        self.phase_shard_corruption(&baseline);
        self.phase_shard_deletion(&baseline);
        self.phase_mapped_truncation(&baseline);
        self.phase_connection_flood();
        self.phase_slow_loris();
        self.phase_mid_request_disconnect();
        self.phase_handler_panic();
        self.phase_volume_disconnect();
        self.phase_pipeline_disconnect(&baseline);
    }

    /// Loads both artifacts and records the healthy replies — whole and
    /// sharded must already agree before anything is injected.
    fn phase_load_and_baseline(&mut self) -> Vec<String> {
        eprintln!("chaos: phase baseline");
        let mut conn = self.connect();
        let load = |conn: &mut Conn, name: &str, path: &Path| {
            conn.request(&format!("LOAD {name} {}", path.display()))
                .unwrap_or_else(|e| format!("ERR {e}"))
        };
        let whole_path = self.whole_path.clone();
        let manifest_path = self.manifest_path.clone();
        let reply = load(&mut conn, "whole", &whole_path);
        self.check(reply.starts_with("OK LOADED"), "load whole", &reply);
        let reply = load(&mut conn, "sharded", &manifest_path);
        self.check(reply.starts_with("OK LOADED"), "load manifest", &reply);

        let mut baseline = Vec::new();
        for (index, obs) in self.observations.clone().into_iter().enumerate() {
            let whole = conn
                .request(&format!("DIAG whole {obs}"))
                .unwrap_or_else(|e| format!("ERR {e}"));
            let sharded = conn
                .request(&format!("DIAG sharded {obs}"))
                .unwrap_or_else(|e| format!("ERR {e}"));
            self.check(
                whole.starts_with("OK DIAG"),
                &format!("baseline whole diag {index}"),
                &whole,
            );
            self.check(
                whole == sharded,
                &format!("baseline whole==sharded {index}"),
                &format!("{whole} vs {sharded}"),
            );
            baseline.push(whole);
        }
        baseline
    }

    /// Failure class 1: the on-disk states a writer killed mid-`build`
    /// leaves behind — partial staging files at seeded truncation points.
    /// The committed artifacts must stay loadable through all of them.
    fn phase_torn_writes(&mut self, baseline: &[String]) {
        eprintln!("chaos: phase torn-writes");
        let whole_bytes = std::fs::read(&self.whole_path).expect("read whole dictionary");
        let mut rng = Prng::seed_from_u64(self.seed ^ 0xA5A5);
        let mut cuts = vec![1, whole_bytes.len() / 2, whole_bytes.len() - 1];
        for _ in 0..3 {
            cuts.push(rng.gen_range(1..whole_bytes.len()));
        }
        let whole_path = self.whole_path.clone();
        let manifest_path = self.manifest_path.clone();
        for cut in cuts {
            let tmp = store::temp_sibling(&whole_path);
            std::fs::write(&tmp, &whole_bytes[..cut]).expect("write torn temp");
            let mut conn = self.connect();
            let reply = conn
                .request(&format!("RELOAD-CHECK-{cut}"))
                .unwrap_or_default();
            self.check(
                reply.starts_with("ERR"),
                "torn: unknown verb is ERR",
                &reply,
            );
            let reply = conn
                .request(&format!("LOAD whole {}", whole_path.display()))
                .unwrap_or_else(|e| format!("ERR {e}"));
            self.check(
                reply.starts_with("OK LOADED"),
                &format!("torn temp at {cut}: whole still loads"),
                &reply,
            );
            std::fs::remove_file(&tmp).ok();
        }
        // A torn temp next to the manifest is equally inert.
        let tmp = store::temp_sibling(&manifest_path);
        std::fs::write(&tmp, b"torn manifest image").expect("write torn manifest temp");
        let mut conn = self.connect();
        let reply = conn
            .request(&format!("LOAD sharded {}", manifest_path.display()))
            .unwrap_or_else(|e| format!("ERR {e}"));
        self.check(
            reply.starts_with("OK LOADED"),
            "torn manifest temp: manifest still loads",
            &reply,
        );
        std::fs::remove_file(&tmp).ok();
        let obs = self.observations[0].clone();
        let reply = conn
            .request(&format!("DIAG whole {obs}"))
            .unwrap_or_else(|e| format!("ERR {e}"));
        self.check(reply == baseline[0], "torn: diagnosis unchanged", &reply);
    }

    /// Degrades one shard (via `mutate`), re-loads the manifest so shard
    /// residency resets, and asserts the exact `PARTIAL` contract; then
    /// restores the shard and asserts full recovery to the baseline reply.
    fn degraded_shard_round(
        &mut self,
        what: &str,
        shard_index: usize,
        expect_reason: &str,
        baseline: &[String],
        mutate: impl FnOnce(&Path),
    ) {
        let shard_path = self.dir.join(&self.manifest.shards[shard_index].file);
        let shard_faults = self.manifest.shards[shard_index].fault_count;
        let original = std::fs::read(&shard_path).expect("read shard");
        mutate(&shard_path);

        let manifest_path = self.manifest_path.clone();
        let obs = self.observations[0].clone();
        let mut conn = self.connect();
        // Re-LOAD resets residency: without it a warm shard would mask the
        // on-disk damage, which is exactly what a server restart would see.
        let reply = conn
            .request(&format!("LOAD sharded {}", manifest_path.display()))
            .unwrap_or_else(|e| format!("ERR {e}"));
        self.check(
            reply.starts_with("OK LOADED"),
            &format!("{what}: reload"),
            &reply,
        );
        let reply = conn
            .request(&format!("DIAG sharded {obs}"))
            .unwrap_or_else(|e| format!("ERR {e}"));
        let expect_coverage = format!(
            "covered={}/{} ",
            self.total_faults - shard_faults,
            self.total_faults
        );
        let expect_degraded = format!("degraded={shard_index}:{expect_reason}");
        self.check(
            reply.starts_with("PARTIAL DIAG"),
            &format!("{what}: PARTIAL verdict"),
            &reply,
        );
        self.check(
            reply.contains(&expect_coverage),
            &format!("{what}: exact fault coverage"),
            &format!("want {expect_coverage:?} in {reply}"),
        );
        self.check(
            reply.contains(&expect_degraded),
            &format!("{what}: degraded reason"),
            &format!("want {expect_degraded:?} in {reply}"),
        );
        self.partial_seen += 1;

        // Restore and recover: the reply must return to the exact baseline.
        std::fs::write(&shard_path, &original).expect("restore shard");
        let reply = conn
            .request(&format!("LOAD sharded {}", manifest_path.display()))
            .unwrap_or_else(|e| format!("ERR {e}"));
        self.check(
            reply.starts_with("OK LOADED"),
            &format!("{what}: reload after restore"),
            &reply,
        );
        let reply = conn
            .request(&format!("DIAG sharded {obs}"))
            .unwrap_or_else(|e| format!("ERR {e}"));
        self.check(
            reply == baseline[0],
            &format!("{what}: recovered to baseline"),
            &reply,
        );
    }

    /// Failure class 2: a shard payload byte flips on disk.
    fn phase_shard_corruption(&mut self, baseline: &[String]) {
        eprintln!("chaos: phase shard-corruption");
        let shard_index = (self.seed as usize) % self.manifest.shards.len();
        self.degraded_shard_round("corrupt shard", shard_index, "checksum", baseline, |path| {
            let mut bytes = std::fs::read(path).expect("read shard for corruption");
            let last = bytes.len() - 1;
            bytes[last] ^= 0x20;
            std::fs::write(path, &bytes).expect("write corrupted shard");
        });
    }

    /// Failure class 3: a shard file disappears outright.
    fn phase_shard_deletion(&mut self, baseline: &[String]) {
        eprintln!("chaos: phase shard-deletion");
        let shard_index = (self.seed as usize + 1) % self.manifest.shards.len();
        self.degraded_shard_round("deleted shard", shard_index, "io", baseline, |path| {
            std::fs::remove_file(path).expect("delete shard");
        });
    }

    /// Failure class 10: a shard file truncated in place, then swapped for
    /// a sibling shard's bytes, under a live server whose dictionaries are
    /// memory-mapped (`--mmap auto`, the default). While the decoded shard
    /// is resident the damage is invisible — the registry answers from the
    /// decoded copy and never touches the mapping, so there is no page
    /// fault to take. Once residency resets, the pre-map length check
    /// refuses the shrunken file with a typed reason and the verdict
    /// degrades to the exact `PARTIAL` contract.
    fn phase_mapped_truncation(&mut self, baseline: &[String]) {
        eprintln!("chaos: phase mapped-truncation");
        let shard_index = (self.seed as usize + 2) % self.manifest.shards.len();
        let shard_path = self.dir.join(&self.manifest.shards[shard_index].file);
        let original = std::fs::read(&shard_path).expect("read shard");
        let manifest_path = self.manifest_path.clone();
        let obs = self.observations[0].clone();
        let truncate_in_place = |path: &Path, len: u64| {
            std::fs::OpenOptions::new()
                .write(true)
                .open(path)
                .expect("open shard for truncation")
                .set_len(len)
                .expect("truncate shard in place");
        };

        // Warm the shard so its decoded form is resident (and its image
        // mapped, where the platform supports it) before the file shrinks.
        let mut conn = self.connect();
        let reply = conn
            .request(&format!("LOAD sharded {}", manifest_path.display()))
            .unwrap_or_else(|e| format!("ERR {e}"));
        self.check(
            reply.starts_with("OK LOADED"),
            "mapped truncation: warm load",
            &reply,
        );
        let reply = conn
            .request(&format!("DIAG sharded {obs}"))
            .unwrap_or_else(|e| format!("ERR {e}"));
        self.check(
            reply == baseline[0],
            "mapped truncation: warm baseline",
            &reply,
        );

        // Truncate in place under the live server. The resident decoded
        // shards keep answering with the exact baseline bytes — no SIGBUS,
        // no degradation, no crashed worker.
        truncate_in_place(&shard_path, (original.len() / 2) as u64);
        let reply = conn
            .request(&format!("DIAG sharded {obs}"))
            .unwrap_or_else(|e| format!("ERR {e}"));
        self.check(
            reply == baseline[0],
            "mapped truncation: resident shards still serve",
            &reply,
        );
        drop(conn);
        std::fs::write(&shard_path, &original).expect("restore shard");

        // Residency reset: the shrunken file must be refused at the
        // pre-map length check, then recover after restore.
        let half = (original.len() / 2) as u64;
        self.degraded_shard_round(
            "mapped truncation",
            shard_index,
            "truncated",
            baseline,
            |path| truncate_in_place(path, half),
        );

        // Replacement: the shard swapped for a sibling's bytes is a valid
        // file with the wrong content — caught by the manifest cross-check
        // before any row is served from it.
        let sibling = self
            .dir
            .join(&self.manifest.shards[(shard_index + 1) % self.manifest.shards.len()].file);
        self.degraded_shard_round(
            "mapped replacement",
            shard_index,
            "checksum",
            baseline,
            |path| {
                std::fs::copy(&sibling, path).expect("replace shard with sibling");
            },
        );
    }

    /// Failure class 4: more connections than the pool admits. The excess
    /// must be shed with `OK BUSY`, and service must resume afterwards.
    fn phase_connection_flood(&mut self) {
        eprintln!("chaos: phase connection-flood");
        let mut held = Vec::new();
        for _ in 0..MAX_CONNECTIONS {
            held.push(self.connect());
        }
        // The acceptor admits (counts) connections ahead of the workers, so
        // the cap is reached as soon as the held sockets are accepted.
        let flood = 10;
        let mut busy = 0;
        let mut served = 0;
        for _ in 0..flood {
            let mut conn = self.connect();
            match conn.read_line() {
                Ok(line) if line.starts_with("OK BUSY") => busy += 1,
                // A race where a held connection drained first is an
                // admission, not a fault — it just will not get a reply
                // until a worker frees up, so don't wait on it.
                _ => served += 1,
            }
        }
        self.busy_seen += busy;
        self.check(
            busy >= u64::try_from(flood - 2).unwrap(),
            "flood: excess connections shed with OK BUSY",
            &format!("{busy}/{flood} BUSY ({served} raced in)"),
        );
        drop(held);
        self.probe("flood: service resumes after drain");
    }

    /// Failure class 5: a client dribbles a partial request and stalls.
    /// The idle limit must cut it off while a concurrent client is served.
    fn phase_slow_loris(&mut self) {
        eprintln!("chaos: phase slow-loris");
        let mut loris = self.connect();
        loris
            .send_raw(b"DIAG whole 01")
            .expect("send partial request");
        // While the loris stalls a worker, the other worker keeps serving.
        self.probe("loris: concurrent client still served");
        std::thread::sleep(IDLE_TIMEOUT + Duration::from_millis(400));
        let fate = loris.read_line();
        let cut_off = match &fate {
            Ok(line) => line.starts_with("ERR") && line.contains("idle"),
            Err(_) => true, // connection closed without the courtesy line
        };
        self.check(
            cut_off,
            "loris: cut off at the idle limit",
            &format!("{fate:?}"),
        );
        self.probe("loris: worker freed afterwards");
    }

    /// Failure class 6: clients that send a request and vanish before the
    /// reply. The dead write must kill the connection, not the worker.
    fn phase_mid_request_disconnect(&mut self) {
        eprintln!("chaos: phase mid-request-disconnect");
        let obs = self.observations[1].clone();
        for _ in 0..3 {
            let mut conn = self.connect();
            conn.send_raw(format!("DIAG whole {obs}\n").as_bytes())
                .expect("send then vanish");
            drop(conn); // gone before the reply is written
        }
        self.probe("disconnect: workers survive dead writes");
    }

    /// Failure class 7: a request that panics its handler. The panic must
    /// be contained to an `ERR` reply on a connection that keeps working.
    fn phase_handler_panic(&mut self) {
        eprintln!("chaos: phase handler-panic");
        let mut conn = self.connect();
        let reply = conn.request("PANIC").unwrap_or_else(|e| format!("ERR {e}"));
        self.check(
            reply.starts_with("ERR") && reply.contains("panicked"),
            "panic: contained to an ERR reply",
            &reply,
        );
        let reply = conn.request("STATS").unwrap_or_else(|e| format!("ERR {e}"));
        self.check(
            reply.starts_with("OK STATS"),
            "panic: same connection keeps working",
            &reply,
        );
    }

    /// Failure class 8: a client opens a `VOLUME` stream, promises a corpus
    /// it never finishes sending, and vanishes. The server is owed lines it
    /// will never get; the abort must be contained to that connection while
    /// a complete `VOLUME` round keeps working before and after.
    fn phase_volume_disconnect(&mut self) {
        eprintln!("chaos: phase volume-disconnect");
        let obs = self.observations[2].clone();
        // A complete round first, so the verb itself is known healthy.
        let mut conn = self.connect();
        conn.send_raw(format!("VOLUME whole 2\nchaos-dev-0 {obs}\nchaos-dev-1 {obs}\n").as_bytes())
            .expect("send volume corpus");
        let header = conn.read_line().unwrap_or_else(|e| format!("ERR {e}"));
        self.check(
            header.starts_with("OK VOLUME 2"),
            "volume: stream header",
            &header,
        );
        let mut summary = None;
        for _ in 0..3 {
            match conn.read_line() {
                Ok(line) if line.starts_with("OK SUMMARY ") => {
                    summary = Some(line);
                    break;
                }
                Ok(_) => {}
                Err(err) => {
                    summary = Some(format!("ERR {err}"));
                    break;
                }
            }
        }
        let summary = summary.unwrap_or_else(|| "missing".to_owned());
        self.check(
            summary.contains("\"devices\":2"),
            "volume: summary accounts both devices",
            &summary,
        );
        // Now the vanishing clients: each promises 10 lines, sends 3, and
        // drops. The worker must shrug each one off.
        for _ in 0..3 {
            let mut conn = self.connect();
            conn.send_raw(
                format!(
                    "VOLUME whole 10\nchaos-dev-0 {obs}\nchaos-dev-1 {obs}\nchaos-dev-2 {obs}\n"
                )
                .as_bytes(),
            )
            .expect("send partial volume corpus");
            drop(conn); // gone with 7 lines still owed
        }
        self.probe("volume: workers survive mid-stream disconnects");
    }

    /// Failure class 9: pipelined bursts cut off mid-reply. A healthy
    /// client first proves a one-send burst answers in order; then clients
    /// burst a backlog, read only the first replies, and vanish — the
    /// server is left holding queued requests and undeliverable replies
    /// for a dead socket, and must reclaim it all without wedging.
    fn phase_pipeline_disconnect(&mut self, baseline: &[String]) {
        eprintln!("chaos: phase pipeline-disconnect");
        let obs = self.observations[3].clone();
        // Healthy pipelining first: 8 requests in one send, 8 in-order
        // replies, each byte-identical to the sequential baseline.
        let burst = format!("DIAG whole {obs}\n").repeat(8);
        let mut conn = self.connect();
        conn.send_raw(burst.as_bytes())
            .expect("send pipeline burst");
        for index in 0..8 {
            let reply = conn.read_line().unwrap_or_else(|e| format!("ERR {e}"));
            self.check(
                reply == baseline[3],
                &format!("pipeline: in-order reply {index}"),
                &reply,
            );
        }
        drop(conn);
        // Now the vanishing clients: 16 requests bursted, 2 replies read,
        // connection dropped with the rest queued or in flight.
        for _ in 0..3 {
            let burst = format!("DIAG whole {obs}\n").repeat(16);
            let mut conn = self.connect();
            conn.send_raw(burst.as_bytes())
                .expect("send pipeline burst");
            for _ in 0..2 {
                let _ = conn.read_line();
            }
            drop(conn); // gone with 14 replies still owed
        }
        self.probe("pipeline: server reclaims abandoned bursts");
    }

    /// Final accounting, graceful shutdown, and the JSON summary.
    fn finish(&mut self, elapsed: Duration) -> usize {
        let mut conn = self.connect();
        let stats = conn.request("STATS").unwrap_or_else(|e| format!("ERR {e}"));
        let field = |name: &str| -> u64 {
            stats
                .split_whitespace()
                .find_map(|t| t.strip_prefix(&format!("{name}=")))
                .and_then(|v| v.parse().ok())
                .unwrap_or(0)
        };
        self.check(
            field("busy") >= self.busy_seen.min(1),
            "stats: busy counter advanced",
            &stats,
        );
        self.check(
            field("partial") >= self.partial_seen.min(1),
            "stats: partial counter advanced",
            &stats,
        );
        let reply = conn
            .request("SHUTDOWN")
            .unwrap_or_else(|e| format!("ERR {e}"));
        self.check(reply == "OK BYE", "shutdown acknowledged", &reply);
        // `wait` must return before the watchdog fires — that IS the
        // no-deadlock assertion for the drain path.
        if let Some(handle) = self.handle.take() {
            handle.wait();
        }

        let failed = self.failures.len();
        println!(
            "{{\"circuit\":\"{}\",\"seed\":{},\"failure_classes\":10,\"checks\":{},\"failed\":{},\
             \"busy\":{},\"partial\":{},\"elapsed_ms\":{}}}",
            self.circuit,
            self.seed,
            self.checks,
            failed,
            field("busy"),
            field("partial"),
            elapsed.as_millis(),
        );
        for failure in &self.failures {
            eprintln!("chaos: FAILED {failure}");
        }
        if failed == 0 {
            eprintln!(
                "chaos: all {} checks passed across 10 failure classes in {elapsed:?}",
                self.checks
            );
        }
        failed
    }
}
