//! Serve *transport* benchmark: drives a live `sdd serve` instance over
//! loopback with pipelined `DIAG` traffic and reports request throughput
//! and latency percentiles for each transport backend at several client
//! concurrency levels.
//!
//! ```text
//! cargo run -p sdd-bench --release --bin serve_bench -- [options]
//!
//!   --requests <n>       requests per client (default: 500)
//!   --window <n>         pipeline depth per client (default: 8)
//!   --out <path>         where to write the JSON report (default: BENCH_serve.json)
//!   --deadline-secs <n>  watchdog: abort a wedged run (default: 120)
//!   --check <path>       validate an existing report instead of benchmarking;
//!                        exits non-zero if the file is missing or malformed
//! ```
//!
//! Each run starts a fresh server (2 workers, c17 same/different
//! dictionary), spawns N clients, and has every client keep a window of
//! pipelined requests in flight — latency is measured send-to-reply per
//! request, throughput over the whole run. The report is one JSON object:
//!
//! ```json
//! {"circuit":"c17","requests_per_client":500,"window":8,"workers":2,
//!  "available_parallelism":1,"reactor_supported":true,
//!  "runs":[
//!    {"backend":"threaded","concurrency":1,"reqs_per_s":52310.1,
//!     "p50_us":120,"p99_us":410},
//!    ...],
//!  "threaded_max_reqs_per_s":61022.4,"reactor_max_reqs_per_s":74891.0,
//!  "reactor_faster":true}
//! ```
//!
//! `reactor_faster` is a recorded observation, not a gated claim: on a
//! single-core host (`available_parallelism` is in the report) the
//! threaded backend's dedicated reader threads can legitimately win, and
//! an honest `false` beats a flattering benchmark. The `--check` gate
//! verifies shape and sanity — both backends present (reactor only where
//! supported), all three concurrency levels, positive throughput, and
//! `p99 >= p50` — never which backend won.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

use same_different::dict::Procedure1Options;
use same_different::serve::{serve, Client, ServeBackend, ServeConfig};
use same_different::store::{save, StoredDictionary};
use same_different::Experiment;

/// Client fan-out levels every backend is measured at.
const CONCURRENCY: &[usize] = &[1, 4, 16];

/// One measured run: a backend at one concurrency level.
struct Run {
    backend: &'static str,
    concurrency: usize,
    reqs_per_s: f64,
    p50_us: u64,
    p99_us: u64,
}

fn main() {
    let mut requests: usize = 500;
    let mut window: usize = 8;
    let mut out = "BENCH_serve.json".to_owned();
    let mut deadline_secs: u64 = 120;
    let mut check_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--requests" => {
                requests = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--requests n")
            }
            "--window" => {
                window = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--window n")
            }
            "--out" => out = args.next().expect("--out takes a path"),
            "--deadline-secs" => {
                deadline_secs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--deadline-secs n")
            }
            "--check" => check_path = Some(args.next().expect("--check takes a path")),
            other => {
                eprintln!("unknown option {other:?}");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = check_path {
        match check(&path) {
            Ok(()) => println!("{path}: ok"),
            Err(err) => {
                eprintln!("{path}: {err}");
                std::process::exit(1);
            }
        }
        return;
    }

    // Watchdog: a wedged server turns into a nonzero exit, not a hang.
    std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_secs(deadline_secs));
        eprintln!("serve_bench: deadline {deadline_secs}s exceeded — a run wedged");
        std::process::exit(2);
    });

    let window = window.max(1);
    let dir = std::env::temp_dir().join(format!("sdd-serve-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let (dict_path, observation) = fixture(&dir);

    let reactor_supported = same_different::reactor::supported();
    let mut backends = vec![("threaded", ServeBackend::Threaded)];
    if reactor_supported {
        backends.push(("reactor", ServeBackend::Reactor));
    } else {
        eprintln!("serve_bench: epoll unsupported here; benchmarking the threaded backend only");
    }

    let mut runs = Vec::new();
    for (name, backend) in backends {
        for &concurrency in CONCURRENCY {
            let run = measure(
                name,
                backend,
                concurrency,
                requests,
                window,
                &dict_path,
                &observation,
            );
            eprintln!(
                "serve_bench: {name} c={concurrency}: {:.0} req/s p50={}us p99={}us",
                run.reqs_per_s, run.p50_us, run.p99_us
            );
            runs.push(run);
        }
    }

    let best = |backend: &str| -> f64 {
        runs.iter()
            .filter(|r| r.backend == backend)
            .map(|r| r.reqs_per_s)
            .fold(0.0, f64::max)
    };
    let threaded_max = best("threaded");
    let reactor_max = best("reactor");

    let mut body = format!(
        "{{\"circuit\":\"c17\",\"requests_per_client\":{requests},\"window\":{window},\
         \"workers\":2,\"available_parallelism\":{},\"reactor_supported\":{reactor_supported},\
         \"runs\":[",
        sdd_sim::available_jobs(),
    );
    for (index, run) in runs.iter().enumerate() {
        if index > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"backend\":\"{}\",\"concurrency\":{},\"reqs_per_s\":{:.1},\
             \"p50_us\":{},\"p99_us\":{}}}",
            run.backend, run.concurrency, run.reqs_per_s, run.p50_us, run.p99_us
        ));
    }
    body.push_str(&format!(
        "],\"threaded_max_reqs_per_s\":{threaded_max:.1},\
         \"reactor_max_reqs_per_s\":{reactor_max:.1},\
         \"reactor_faster\":{}}}",
        reactor_supported && reactor_max > threaded_max
    ));
    std::fs::write(&out, format!("{body}\n")).expect("write report");
    println!("{body}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Builds the c17 fixture once: a saved `.sddb` and one injected-fault
/// observation string for the `DIAG` traffic.
fn fixture(dir: &std::path::Path) -> (std::path::PathBuf, String) {
    let exp = Experiment::new(same_different::netlist::library::c17());
    let tests = exp.diagnostic_tests(&Default::default()).tests;
    let suite = exp.build_dictionaries(
        &tests,
        &Procedure1Options {
            calls1: 2,
            ..Default::default()
        },
    );
    let path = dir.join("c17.sddb");
    save(
        &path,
        &StoredDictionary::SameDifferent(suite.same_different),
    )
    .expect("save dictionary");
    let fault = exp.universe().fault(exp.faults()[3]);
    let observation: Vec<String> = tests
        .iter()
        .map(|t| {
            same_different::sim::reference::faulty_response(exp.circuit(), exp.view(), fault, t)
                .to_string()
        })
        .collect();
    (path, observation.join("/"))
}

/// One benchmark run: fresh server, `concurrency` clients, each keeping
/// `window` pipelined requests in flight until it has `requests` replies.
fn measure(
    name: &'static str,
    backend: ServeBackend,
    concurrency: usize,
    requests: usize,
    window: usize,
    dict_path: &std::path::Path,
    observation: &str,
) -> Run {
    let handle = serve(&ServeConfig {
        workers: 2,
        max_connections: concurrency + 8,
        backend,
        ..ServeConfig::default()
    })
    .expect("bind bench server");
    let addr = handle.addr();
    let mut control = Client::connect(addr).expect("connect control client");
    let reply = control
        .request(&format!("LOAD c17 {}", dict_path.display()))
        .expect("LOAD request");
    assert!(reply.starts_with("OK LOADED"), "{reply}");

    let started = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..concurrency)
            .map(|_| scope.spawn(move || client_loop(addr, requests, window, observation)))
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("client thread"))
            .collect()
    });
    let elapsed = started.elapsed();

    assert_eq!(control.request("SHUTDOWN").expect("SHUTDOWN"), "OK BYE");
    handle.wait();

    latencies.sort_unstable();
    let total = latencies.len();
    let percentile = |p: f64| -> u64 {
        let index = ((total as f64) * p).ceil() as usize;
        latencies[index.clamp(1, total) - 1]
    };
    Run {
        backend: name,
        concurrency,
        reqs_per_s: total as f64 / elapsed.as_secs_f64(),
        p50_us: percentile(0.50),
        p99_us: percentile(0.99),
    }
}

/// One client: keeps up to `window` `DIAG` requests on the wire, records
/// send-to-reply latency for each, returns the latencies in microseconds.
fn client_loop(
    addr: std::net::SocketAddr,
    requests: usize,
    window: usize,
    observation: &str,
) -> Vec<u64> {
    let stream = TcpStream::connect(addr).expect("connect bench client");
    stream.set_nodelay(true).expect("set nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let request = format!("DIAG c17 {observation}\n");
    let mut latencies = Vec::with_capacity(requests);
    let mut in_flight: VecDeque<Instant> = VecDeque::with_capacity(window);
    let mut sent = 0usize;
    let mut line = String::new();
    while latencies.len() < requests {
        if sent < requests && in_flight.len() < window {
            // Top the window up in one send so the burst actually
            // pipelines instead of trickling a request at a time.
            let batch = (requests - sent).min(window - in_flight.len());
            let burst = request.repeat(batch);
            (&stream).write_all(burst.as_bytes()).expect("send burst");
            for _ in 0..batch {
                in_flight.push_back(Instant::now());
            }
            sent += batch;
            continue;
        }
        line.clear();
        assert!(
            reader.read_line(&mut line).expect("read reply") > 0,
            "server hung up mid-run"
        );
        let issued = in_flight.pop_front().expect("reply without a request");
        assert!(line.starts_with("OK DIAG "), "{line}");
        latencies.push(u64::try_from(issued.elapsed().as_micros()).unwrap_or(u64::MAX));
    }
    latencies
}

/// Validates a report written by a previous run: both backends present
/// (reactor only when the report says it is supported), every concurrency
/// level measured, positive throughput, and `p99 >= p50` per run.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("unreadable: {err}"))?;
    let body = text.trim();
    if !(body.starts_with('{') && body.ends_with('}')) {
        return Err("not a JSON object".to_owned());
    }
    let reactor_supported = match field(body, "reactor_supported") {
        Some("true") => true,
        Some("false") => false,
        other => return Err(format!("bad \"reactor_supported\": {other:?}")),
    };
    if field(body, "reactor_faster").is_none() {
        return Err("missing key \"reactor_faster\"".to_owned());
    }
    let mut backends = vec!["threaded"];
    if reactor_supported {
        backends.push("reactor");
    }
    for backend in backends {
        for &concurrency in CONCURRENCY {
            let prefix = format!("{{\"backend\":\"{backend}\",\"concurrency\":{concurrency},");
            let start = body
                .find(&prefix)
                .ok_or_else(|| format!("missing run {backend} c={concurrency}"))?;
            let run = &body[start..];
            let run = &run[..run.find('}').map_or(run.len(), |i| i + 1)];
            let number = |key: &str| -> Result<f64, String> {
                field(run, key)
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|n| n.is_finite() && *n >= 0.0)
                    .ok_or_else(|| format!("run {backend} c={concurrency}: bad {key:?}"))
            };
            if number("reqs_per_s")? <= 0.0 {
                return Err(format!("run {backend} c={concurrency}: zero throughput"));
            }
            if number("p99_us")? < number("p50_us")? {
                return Err(format!("run {backend} c={concurrency}: p99 < p50"));
            }
        }
    }
    Ok(())
}

/// Extracts the raw value text after `"key":` up to the next top-level
/// delimiter. Sufficient for the flat objects this binary writes.
fn field<'t>(body: &'t str, key: &str) -> Option<&'t str> {
    let needle = format!("\"{key}\":");
    let start = body.find(&needle)? + needle.len();
    let rest = &body[start..];
    let end = if let Some(tail) = rest.strip_prefix('"') {
        tail.find('"')? + 2
    } else {
        rest.find([',', '}']).unwrap_or(rest.len())
    };
    Some(rest[..end].trim())
}
