//! Dictionary *construction* benchmark: times the three build stages —
//! fault simulation, Procedure 1 (baseline selection), Procedure 2
//! (baseline replacement) — at `jobs=1` versus `jobs=N`, and proves the
//! parallel path produces a byte-identical `.sddb` dictionary.
//!
//! ```text
//! cargo run -p sdd-bench --release --bin build_bench -- [options]
//!
//!   --circuit <name>   ISCAS'89-shaped benchmark (default: s1423)
//!   --ttype <t>        diag | 10det (default: diag)
//!   --seed <u64>       generation seed (default: 1)
//!   --calls1 <n>       Procedure 1 restart patience (default: 10)
//!   --jobs <n>         parallel worker count (default: all hardware threads)
//!   --out <path>       where to write the JSON report (default: BENCH_build.json)
//!   --check <path>     validate an existing report instead of benchmarking;
//!                      exits non-zero if the file is missing or malformed
//! ```
//!
//! The report is one JSON object, e.g.:
//!
//! ```json
//! {"circuit":"s1423","ttype":"diag","seed":1,"faults":1501,"tests":241,
//!  "jobs":4,"available_parallelism":4,"jobs_effective":4,
//!  "simulate_s_jobs1":1.91,"simulate_s_jobsn":0.52,
//!  "procedure1_s_jobs1":10.80,"procedure1_s_jobsn":2.95,
//!  "procedure2_s":0.41,
//!  "simulate_speedup":3.67,"procedure1_speedup":3.66,
//!  "indistinguished_pairs":210,"procedure1_calls":14,"identical":true}
//! ```
//!
//! `identical` is the headline correctness claim: the serial and parallel
//! response matrices compare equal, Procedure 1 selects the same baselines
//! with the same figure of merit, and the encoded `.sddb` bytes match.
//! Speedups depend on the host (`available_parallelism` is recorded so a
//! single-core CI box's numbers are not misread as a regression).
//!
//! The report also carries a `shard_bench` point comparing the unsharded
//! deployment (cold `.sddb` read + decode + first diagnosis) against the
//! sharded one (manifest open + every shard load + merged diagnosis):
//! `shards`, `unsharded_cold_s`, `sharded_cold_s`, and `shard_identical`,
//! the second correctness claim — the merged cross-shard ranking equals the
//! unsharded one bit for bit.
//!
//! Finally a `patch_bench` point times the incremental (ECO) update path
//! against the from-scratch alternative: a single-pin rewire of the
//! benchmark circuit is applied to the written artifact with
//! `patch_dictionary` (`patch_s`) and, separately, the modified netlist is
//! rebuilt through the full simulate → Procedure 1 → Procedure 2 → encode →
//! write flow (`rebuild_s`). `patch_identical` is the third correctness
//! claim: the patched file's bytes equal a rebuild of the modified netlist
//! under the patched baselines, modulo the patch-generation header field.
//! The `--check` gate requires `patch_s < rebuild_s` — the point of the
//! patch path is that it is cheaper than the rebuild it replaces.

use std::time::Instant;

use same_different::netlist::{Circuit, Driver};
use same_different::Experiment;
use sdd_bench::TestSetType;
use sdd_core::{replace_baselines, select_baselines, Procedure1Options, SameDifferentDictionary};
use sdd_store::StoredDictionary;

/// Keys [`check`] requires to hold a finite, non-negative number.
const NUMERIC_KEYS: &[&str] = &[
    "seed",
    "faults",
    "tests",
    "jobs",
    "available_parallelism",
    "jobs_effective",
    "simulate_s_jobs1",
    "simulate_s_jobsn",
    "procedure1_s_jobs1",
    "procedure1_s_jobsn",
    "procedure2_s",
    "simulate_speedup",
    "procedure1_speedup",
    "indistinguished_pairs",
    "procedure1_calls",
    "shards",
    "unsharded_cold_s",
    "sharded_cold_s",
    "patch_s",
    "rebuild_s",
    "patch_touched_tests",
];

fn main() {
    let mut circuit = "s1423".to_owned();
    let mut ttype = TestSetType::Diagnostic;
    let mut seed: u64 = 1;
    let mut calls1: usize = 10;
    let mut jobs = sdd_sim::available_jobs();
    let mut out = "BENCH_build.json".to_owned();
    let mut check_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--circuit" => circuit = args.next().expect("--circuit takes a name"),
            "--ttype" => {
                ttype = match args.next().expect("--ttype takes diag|10det").as_str() {
                    "diag" => TestSetType::Diagnostic,
                    "10det" => TestSetType::TenDetect,
                    other => {
                        eprintln!("unknown ttype {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed u64")
            }
            "--calls1" => {
                calls1 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--calls1 n")
            }
            "--jobs" => jobs = args.next().and_then(|s| s.parse().ok()).expect("--jobs n"),
            "--out" => out = args.next().expect("--out takes a path"),
            "--check" => check_path = Some(args.next().expect("--check takes a path")),
            other => {
                eprintln!("unknown option {other:?}");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = check_path {
        match check(&path) {
            Ok(()) => println!("{path}: ok"),
            Err(why) => {
                eprintln!("{path}: {why}");
                std::process::exit(1);
            }
        }
        return;
    }

    let report = run(&circuit, ttype, seed, calls1, jobs);
    std::fs::write(&out, &report).expect("write report");
    println!("{report}");
    eprintln!("wrote {out}");
}

/// Runs the benchmark and renders the JSON report.
fn run(circuit: &str, ttype: TestSetType, seed: u64, calls1: usize, jobs: usize) -> String {
    let jobs = jobs.max(1);
    let exp = Experiment::iscas89(circuit, seed).unwrap_or_else(|| {
        eprintln!("unknown circuit {circuit:?}");
        std::process::exit(2);
    });
    let atpg = sdd_atpg::AtpgOptions {
        seed,
        ..Default::default()
    };
    let tests = match ttype {
        TestSetType::Diagnostic => exp.diagnostic_tests(&atpg),
        TestSetType::TenDetect => exp.detection_tests(10, &atpg),
    };

    // Stage 1: fault simulation, serial then parallel.
    let start = Instant::now();
    let matrix_serial = exp.simulate_jobs(&tests.tests, 1);
    let simulate_s_jobs1 = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let matrix = exp.simulate_jobs(&tests.tests, jobs);
    let simulate_s_jobsn = start.elapsed().as_secs_f64();
    let mut identical = matrix == matrix_serial;

    // Stage 2: Procedure 1, serial then parallel.
    let options = |jobs| Procedure1Options {
        calls1,
        seed,
        jobs,
        ..Procedure1Options::default()
    };
    let start = Instant::now();
    let selection_serial = select_baselines(&matrix_serial, &options(1));
    let procedure1_s_jobs1 = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let mut selection = select_baselines(&matrix, &options(jobs));
    let procedure1_s_jobsn = start.elapsed().as_secs_f64();
    identical &= selection.baselines == selection_serial.baselines
        && selection.indistinguished_pairs == selection_serial.indistinguished_pairs
        && selection.calls == selection_serial.calls;

    // Stage 3: Procedure 2 (serial by construction — passes are inherently
    // sequential), then the byte-level identity proof.
    let start = Instant::now();
    let pairs = replace_baselines(&matrix, &mut selection.baselines);
    let procedure2_s = start.elapsed().as_secs_f64();

    let mut serial_baselines = selection_serial.baselines;
    replace_baselines(&matrix_serial, &mut serial_baselines);
    let dictionary = SameDifferentDictionary::build(&matrix, &selection.baselines);
    let bytes = sdd_store::encode(&StoredDictionary::SameDifferent(dictionary.clone())).unwrap();
    let serial_bytes = sdd_store::encode(&StoredDictionary::SameDifferent(
        SameDifferentDictionary::build(&matrix_serial, &serial_baselines),
    ))
    .unwrap();
    identical &= bytes == serial_bytes;

    // Shard bench: cold-load + first-diagnosis latency, unsharded `.sddb`
    // versus a cone-partitioned shard set, plus the bit-identity proof of
    // the merged cross-shard ranking.
    let (shards, unsharded_cold_s, sharded_cold_s, shard_identical) =
        shard_bench(&exp, &matrix, StoredDictionary::SameDifferent(dictionary));

    // Patch bench: the incremental ECO path versus the rebuild it replaces.
    let (patch_s, rebuild_s, patch_touched_tests, patch_identical) =
        patch_bench(&exp, &tests.tests, &bytes, calls1, seed, jobs);

    // `jobs_effective` is the honesty field: `--jobs 4` on a single-core
    // runner still exercises the threaded path, but only
    // min(jobs, available_parallelism) threads can actually run — readers
    // (and the `--check` gate) must not read a 1.0x "speedup" there as a
    // regression.
    format!(
        "{{\"circuit\":\"{}\",\"ttype\":\"{}\",\"seed\":{},\"faults\":{},\"tests\":{},\
         \"jobs\":{},\"available_parallelism\":{},\"jobs_effective\":{},\
         \"simulate_s_jobs1\":{:.3},\"simulate_s_jobsn\":{:.3},\
         \"procedure1_s_jobs1\":{:.3},\"procedure1_s_jobsn\":{:.3},\
         \"procedure2_s\":{:.3},\
         \"simulate_speedup\":{:.2},\"procedure1_speedup\":{:.2},\
         \"indistinguished_pairs\":{},\"procedure1_calls\":{},\
         \"shards\":{},\"unsharded_cold_s\":{:.6},\"sharded_cold_s\":{:.6},\
         \"shard_identical\":{},\
         \"patch_s\":{:.6},\"rebuild_s\":{:.6},\"patch_touched_tests\":{},\
         \"patch_identical\":{},\"identical\":{}}}",
        circuit,
        ttype,
        seed,
        exp.faults().len(),
        tests.len(),
        jobs,
        sdd_sim::available_jobs(),
        jobs.min(sdd_sim::available_jobs()),
        simulate_s_jobs1,
        simulate_s_jobsn,
        procedure1_s_jobs1,
        procedure1_s_jobsn,
        procedure2_s,
        simulate_s_jobs1 / simulate_s_jobsn.max(1e-9),
        procedure1_s_jobs1 / procedure1_s_jobsn.max(1e-9),
        pairs,
        selection.calls,
        shards,
        unsharded_cold_s,
        sharded_cold_s,
        shard_identical,
        patch_s,
        rebuild_s,
        patch_touched_tests,
        patch_identical,
        identical,
    )
}

/// Finds a patch-compatible rewire ECO: a gate pin fed by a fan-out-≥3 net,
/// rewired to a different fan-out-≥2 input/flip-flop net. Both nets keep
/// fan-out > 1 on every sink, so the branch-fault universe — and with
/// unchanged gate kinds, the structural collapsing — is preserved while the
/// function changes. Among the candidates, the gate with the *smallest*
/// output cone wins: real ECOs are local, and the bench should time the
/// local-update path, not a root-net rewrite.
fn find_rewire(exp: &Experiment) -> Option<Circuit> {
    let circuit = exp.circuit();
    let fanout = circuit.fanout_counts();
    let cones = sdd_sim::OutputCones::compute(circuit, exp.view());
    let sources: Vec<_> = circuit
        .nets()
        .filter(|&net| {
            fanout[net.index()] >= 2
                && matches!(circuit.driver(net), Driver::Input | Driver::Dff { .. })
        })
        .collect();
    let mut best: Option<(usize, Circuit)> = None;
    for gate in circuit.nets() {
        let Driver::Gate { kind, inputs } = circuit.driver(gate) else {
            continue;
        };
        let reach = cones.net_cone(gate).count_ones();
        if best.as_ref().is_some_and(|(b, _)| *b <= reach) {
            continue;
        }
        for (pin, &old_source) in inputs.iter().enumerate() {
            if fanout[old_source.index()] < 3 {
                continue;
            }
            if let Some(&new_source) = sources
                .iter()
                .find(|&&s| s != old_source && !inputs.contains(&s))
            {
                let mut rewired = inputs.clone();
                rewired[pin] = new_source;
                let eco = circuit
                    .with_driver(
                        gate,
                        Driver::Gate {
                            kind: *kind,
                            inputs: rewired,
                        },
                    )
                    .expect("rewiring to an input net cannot form a cycle");
                best = Some((reach, eco));
                break;
            }
        }
    }
    best.map(|(_, eco)| eco)
}

/// Times the ECO patch path against a from-scratch rebuild of the modified
/// netlist and proves the patched bytes equal the rebuild's (modulo the
/// patch-generation header field). Returns
/// `(patch_s, rebuild_s, touched_tests, patch_identical)`.
fn patch_bench(
    exp: &Experiment,
    tests: &[sdd_logic::BitVec],
    whole_bytes: &[u8],
    calls1: usize,
    seed: u64,
    jobs: usize,
) -> (f64, f64, usize, bool) {
    use same_different::patch::{patch_dictionary, PatchOptions};

    let old = exp.circuit();
    let new = find_rewire(exp).expect("no patch-compatible rewire in benchmark circuit");

    let dir = std::env::temp_dir().join(format!("sdd-patch-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create patch bench dir");
    let path = dir.join("bench.sddb");
    std::fs::write(&path, whole_bytes).expect("write artifact");

    let start = Instant::now();
    let report = patch_dictionary(
        old,
        &new,
        tests,
        &path,
        &PatchOptions {
            jobs,
            ..Default::default()
        },
    )
    .expect("patch");
    let patch_s = start.elapsed().as_secs_f64();

    // The rebuild it replaces: the full build flow on the modified netlist,
    // through to committed bytes on disk.
    let rebuild_path = dir.join("rebuild.sddb");
    let start = Instant::now();
    let new_exp = Experiment::new(new.clone());
    let matrix = new_exp.simulate_jobs(tests, jobs);
    let mut selection = select_baselines(
        &matrix,
        &Procedure1Options {
            calls1,
            seed,
            jobs,
            ..Procedure1Options::default()
        },
    );
    replace_baselines(&matrix, &mut selection.baselines);
    let rebuilt = SameDifferentDictionary::build(&matrix, &selection.baselines);
    sdd_store::save(&rebuild_path, &StoredDictionary::SameDifferent(rebuilt))
        .expect("write rebuilt dictionary");
    let rebuild_s = start.elapsed().as_secs_f64();

    // Identity claim: the patched file equals a rebuild of the modified
    // netlist under the patched baselines (the patch's documented policy —
    // untouched tests keep their baselines, touched tests carry the
    // refreshed ones).
    let patched_bytes = std::fs::read(&path).expect("read patched artifact");
    let patched = sdd_store::read_same_different_auto(&patched_bytes).expect("decode patched");
    let target = SameDifferentDictionary::build(&matrix, patched.baseline_classes());
    let target_bytes = sdd_store::encode(&StoredDictionary::SameDifferent(target)).unwrap();
    let patch_identical = sdd_store::strip_patch_provenance(&patched_bytes).unwrap()
        == sdd_store::strip_patch_provenance(&target_bytes).unwrap();

    let _ = std::fs::remove_dir_all(&dir);
    (patch_s, rebuild_s, report.touched_tests, patch_identical)
}

/// Times the two deployment shapes from a cold start and proves the merged
/// cross-shard ranking is bit-identical to the unsharded one. The probe
/// observation is fault 0's simulated responses — a realistic single-fault
/// datalog.
fn shard_bench(
    exp: &Experiment,
    matrix: &sdd_sim::ResponseMatrix,
    whole: StoredDictionary,
) -> (usize, f64, f64, bool) {
    use same_different::shard::{diagnose_sharded, ShardObservation};

    let dir = std::env::temp_dir().join(format!("sdd-shard-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create shard bench dir");
    let whole_path = dir.join("bench.sddb");
    sdd_store::save(&whole_path, &whole).expect("write unsharded dictionary");
    let shards = 4.min(whole.fault_count());
    let cones = sdd_sim::OutputCones::compute(exp.circuit(), exp.view());
    let ranges = cones.shard_ranges(exp.universe(), exp.faults(), shards);
    let shard_cones: Vec<sdd_logic::BitVec> = ranges
        .iter()
        .map(|r| cones.shard_cone(exp.universe(), exp.faults(), r.clone()))
        .collect();
    let manifest_path = dir.join("bench.sddm");
    sdd_store::write_sharded(&manifest_path, &whole, &ranges, Some(&shard_cones))
        .expect("write sharded dictionary");
    drop(whole);

    let responses: Vec<sdd_logic::MaskedBitVec> = (0..matrix.test_count())
        .map(|t| sdd_logic::MaskedBitVec::from_known(matrix.response(t, matrix.class(t, 0))))
        .collect();
    let observation = ShardObservation::Responses(&responses);

    let start = Instant::now();
    let bytes = std::fs::read(&whole_path).expect("read unsharded dictionary");
    let cold = sdd_store::decode(&bytes).expect("decode unsharded dictionary");
    let unsharded_report =
        diagnose_sharded(&[(0, &cold)], observation).expect("unsharded diagnosis");
    let unsharded_cold_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let reader = sdd_store::ShardedReader::open(&manifest_path).expect("open manifest");
    let loaded: Vec<(usize, StoredDictionary)> = reader
        .manifest()
        .shards
        .iter()
        .enumerate()
        .map(|(i, record)| {
            (
                record.fault_start,
                reader.load_shard(i).expect("load shard"),
            )
        })
        .collect();
    let refs: Vec<(usize, &StoredDictionary)> =
        loaded.iter().map(|(start, d)| (*start, d)).collect();
    let sharded_report = diagnose_sharded(&refs, observation).expect("sharded diagnosis");
    let sharded_cold_s = start.elapsed().as_secs_f64();

    let _ = std::fs::remove_dir_all(&dir);
    (
        ranges.len(),
        unsharded_cold_s,
        sharded_cold_s,
        sharded_report == unsharded_report,
    )
}

/// Validates a previously written report: the file must exist, look like a
/// single JSON object, carry every numeric key with a finite non-negative
/// value, name a circuit, and claim `"identical":true`.
///
/// The workspace has no JSON parser (and takes no dependencies), so this is
/// a schema check by string scanning — exactly strong enough for CI to
/// refuse an empty, truncated, or `identical:false` report.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("unreadable: {err}"))?;
    let body = text.trim();
    if !(body.starts_with('{') && body.ends_with('}')) {
        return Err("not a JSON object".to_owned());
    }
    for key in NUMERIC_KEYS {
        let value = field(body, key).ok_or_else(|| format!("missing key {key:?}"))?;
        let number: f64 = value
            .parse()
            .map_err(|_| format!("key {key:?} holds non-numeric {value:?}"))?;
        if !number.is_finite() || number < 0.0 {
            return Err(format!("key {key:?} holds invalid value {number}"));
        }
    }
    match field(body, "circuit") {
        Some(value) if value.starts_with('"') && value.len() > 2 => {}
        _ => return Err("missing or empty key \"circuit\"".to_owned()),
    }
    for claim in ["shard_identical", "patch_identical", "identical"] {
        match field(body, claim) {
            Some("true") => {}
            Some(value) => return Err(format!("{claim:?} is {value}, expected true")),
            None => return Err(format!("missing key {claim:?}")),
        }
    }
    // The patch path exists to beat the rebuild it replaces; a report where
    // it does not is a regression regardless of host shape.
    let patch_s: f64 = field(body, "patch_s")
        .and_then(|v| v.parse().ok())
        .unwrap_or(f64::MAX);
    let rebuild_s: f64 = field(body, "rebuild_s")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0);
    if patch_s >= rebuild_s {
        return Err(format!(
            "patch_s={patch_s} did not beat rebuild_s={rebuild_s}; \
             the incremental patch path regressed"
        ));
    }
    // Speedup sanity only where speedup was possible: on a host where the
    // threaded run had real cores (`jobs_effective > 1`), the parallel path
    // must not be catastrophically slower than serial. A single-core runner
    // (jobs_effective == 1) skips this — there, ~1.0x is the honest answer.
    let effective: f64 = field(body, "jobs_effective")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    if effective > 1.0 {
        for key in ["simulate_speedup", "procedure1_speedup"] {
            let speedup: f64 = field(body, key).and_then(|v| v.parse().ok()).unwrap_or(0.0);
            if speedup < 0.5 {
                return Err(format!(
                    "{key:?} is {speedup} with jobs_effective={effective}; \
                     the parallel path regressed"
                ));
            }
        }
    }
    Ok(())
}

/// Extracts the raw value text after `"key":` up to the next top-level
/// delimiter. Sufficient for the flat objects this binary writes.
fn field<'t>(body: &'t str, key: &str) -> Option<&'t str> {
    let needle = format!("\"{key}\":");
    let start = body.find(&needle)? + needle.len();
    let rest = &body[start..];
    let end = if let Some(tail) = rest.strip_prefix('"') {
        // String value: spans up to and including the closing quote.
        tail.find('"')? + 2
    } else {
        rest.find([',', '}']).unwrap_or(rest.len())
    };
    Some(rest[..end].trim())
}
