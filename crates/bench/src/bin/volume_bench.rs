//! Volume-diagnosis benchmark: synthesizes a seeded device corpus (two
//! injected systematic faults over random-fault noise), streams it through
//! `sdd_volume::run` at `jobs=1` versus `jobs=N`, and sweeps the corruption
//! model to show the clusters surviving progressively worse datalogs.
//!
//! ```text
//! cargo run -p sdd-bench --release --bin volume_bench -- [options]
//!
//!   --circuit <name>   ISCAS'89-shaped benchmark (default: s298)
//!   --devices <n>      corpus size (default: 300)
//!   --seed <u64>       synthesis seed (default: 1)
//!   --jobs <n>         parallel worker count (default: all hardware threads)
//!   --out <path>       where to write the JSON report (default: BENCH_volume.json)
//!   --check <path>     validate an existing report instead of benchmarking;
//!                      exits non-zero if the file is missing or malformed
//! ```
//!
//! The report is one JSON object, e.g.:
//!
//! ```json
//! {"circuit":"s298","seed":1,"devices":300,"faults":342,"tests":81,
//!  "jobs":4,"available_parallelism":4,"jobs_effective":4,
//!  "corpus_bytes":128403,"serial_s":0.84,"parallel_s":0.23,
//!  "devices_per_s_jobs1":357.1,"devices_per_s_jobsn":1304.3,"speedup":3.65,
//!  "ok":291,"partial":0,"error":0,"skipped":0,
//!  "identical":true,"systematic_top":true,
//!  "sweep":[{"mask_rate":0.0000,"flip_rate":0.0000,"ok":300,"top":true},...]}
//! ```
//!
//! `identical` is the determinism claim (the `jobs=1` and `jobs=N` reports
//! are byte-identical); `systematic_top` is the diagnostic claim (both
//! injected faults classify systematic and the top-ranked cluster is one
//! of them), evaluated on the *clean* sweep level — on small circuits a
//! single flipped bit can move a device's best match, so the corrupted
//! levels only record survival in their per-level `top` flags rather than
//! gate CI. Throughput depends on the host — `jobs_effective` records how
//! many threads could actually run, so a single-core runner's ~1.0x is not
//! misread as a regression.

use std::time::Instant;

use same_different::Experiment;
use sdd_store::StoredDictionary;
use sdd_volume::{JsonlSink, SynthSpec, VolumeOptions, VolumeSummary, WholeSource};

/// Keys [`check`] requires to hold a finite, non-negative number.
const NUMERIC_KEYS: &[&str] = &[
    "seed",
    "devices",
    "faults",
    "tests",
    "jobs",
    "available_parallelism",
    "jobs_effective",
    "corpus_bytes",
    "serial_s",
    "parallel_s",
    "devices_per_s_jobs1",
    "devices_per_s_jobsn",
    "speedup",
    "ok",
    "partial",
    "error",
    "skipped",
];

/// Corruption sweep levels: clean, the default tester-noise point, and a
/// heavily degraded datalog.
const SWEEP: &[(f64, f64)] = &[(0.0, 0.0), (0.02, 0.01), (0.20, 0.05)];

fn main() {
    let mut circuit = "s298".to_owned();
    let mut devices: usize = 300;
    let mut seed: u64 = 1;
    let mut jobs = sdd_sim::available_jobs();
    let mut out = "BENCH_volume.json".to_owned();
    let mut check_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--circuit" => circuit = args.next().expect("--circuit takes a name"),
            "--devices" => {
                devices = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--devices n")
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed u64")
            }
            "--jobs" => jobs = args.next().and_then(|s| s.parse().ok()).expect("--jobs n"),
            "--out" => out = args.next().expect("--out takes a path"),
            "--check" => check_path = Some(args.next().expect("--check takes a path")),
            other => {
                eprintln!("unknown option {other:?}");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = check_path {
        match check(&path) {
            Ok(()) => println!("{path}: ok"),
            Err(why) => {
                eprintln!("{path}: {why}");
                std::process::exit(1);
            }
        }
        return;
    }

    let report = run(&circuit, devices, seed, jobs);
    std::fs::write(&out, &report).expect("write report");
    println!("{report}");
    eprintln!("wrote {out}");
}

/// One volume pass over `corpus`; returns the report bytes, the summary,
/// and the elapsed seconds.
fn pass(
    source: &WholeSource,
    corpus: &[u8],
    options: &VolumeOptions,
) -> (Vec<u8>, VolumeSummary, f64) {
    let text = std::str::from_utf8(corpus).expect("synthesized corpus is UTF-8");
    let mut lines = text.lines().map(|l| Ok(l.to_owned()));
    let mut report = Vec::new();
    let start = Instant::now();
    let summary = sdd_volume::run(source, &mut lines, &mut JsonlSink(&mut report), options)
        .expect("volume run");
    (report, summary, start.elapsed().as_secs_f64())
}

/// Diagnoses fault `fault`'s own clean responses and returns its ranked
/// representative and the best-set tie count. A fault whose representative
/// is itself with no ties is *uniquely diagnosable* — the right kind of
/// fault to inject as ground truth, because every clean recurrence lands
/// on the same cluster key.
fn representative(
    stored: &StoredDictionary,
    matrix: &sdd_sim::ResponseMatrix,
    fault: usize,
) -> (usize, usize) {
    use sdd_volume::shard::{diagnose_sharded, ShardObservation};
    let responses: Vec<sdd_logic::MaskedBitVec> = (0..matrix.test_count())
        .map(|t| sdd_logic::MaskedBitVec::from_known(matrix.response(t, matrix.class(t, fault))))
        .collect();
    let report = diagnose_sharded(&[(0, stored)], ShardObservation::Responses(&responses))
        .expect("self-diagnosis");
    (report.best.first().copied().unwrap_or(0), report.best.len())
}

/// Both injected faults classify systematic, and the top-ranked cluster is
/// one of them.
fn systematic_top(summary: &VolumeSummary, injected: &[usize]) -> bool {
    let systematic = |fault: usize| {
        summary
            .clusters
            .faults
            .iter()
            .any(|c| c.fault == fault && c.systematic)
    };
    injected.iter().all(|&f| systematic(f))
        && summary
            .clusters
            .faults
            .first()
            .is_some_and(|top| injected.contains(&top.fault))
}

/// Runs the benchmark and renders the JSON report.
fn run(circuit: &str, devices: usize, seed: u64, jobs: usize) -> String {
    let jobs = jobs.max(1);
    let exp = Experiment::iscas89(circuit, seed).unwrap_or_else(|| {
        eprintln!("unknown circuit {circuit:?}");
        std::process::exit(2);
    });
    let atpg = sdd_atpg::AtpgOptions {
        seed,
        ..Default::default()
    };
    let tests = exp.diagnostic_tests(&atpg);
    let matrix = exp.simulate(&tests.tests);
    let faults = matrix.fault_count();
    let dictionary = sdd_core::SameDifferentDictionary::with_fault_free_baselines(&matrix);
    let stored = StoredDictionary::SameDifferent(dictionary.clone());
    // Per-fault cones make the cone clusters real (the `.sddm` path gets
    // them from the manifest; a whole dictionary needs them supplied).
    let cones = sdd_sim::OutputCones::compute(exp.circuit(), exp.view());
    let fault_cones = cones.fault_cones(exp.universe(), exp.faults());
    let source = WholeSource::new(StoredDictionary::SameDifferent(dictionary))
        .with_cones(fault_cones)
        .expect("cones cover every fault");

    // Two uniquely-diagnosable systematic faults spread across the fault
    // list, 20% of devices each; everything else is uniform random noise.
    // Uniquely diagnosable matters: a fault whose clean diagnosis ties
    // with an equivalent lower-indexed fault would cluster under *that*
    // index, and the ground-truth claim would test the tiebreak, not the
    // clustering.
    let pick = |from: usize, taken: Option<usize>| -> usize {
        (from..faults)
            .chain(0..from)
            .find(|&f| Some(f) != taken && representative(&stored, &matrix, f) == (f, 1))
            .unwrap_or(from)
    };
    let first = pick(faults / 3, None);
    let injected = [first, pick((2 * faults) / 3, Some(first))];
    let spec = |mask_rate: f64, flip_rate: f64| SynthSpec {
        devices,
        systematic: injected.iter().map(|&f| (f, 0.2)).collect(),
        mask_rate,
        flip_rate,
        jsonl_every: 5,
        seed,
    };

    // Timing corpus at the default tester-noise point.
    let (timing_mask, timing_flip) = SWEEP[1];
    let mut corpus = Vec::new();
    sdd_volume::synthesize(&matrix, &spec(timing_mask, timing_flip), &mut corpus)
        .expect("synthesize corpus");

    let options = |jobs| VolumeOptions {
        jobs,
        seed,
        ..VolumeOptions::default()
    };
    let (serial_report, summary, serial_s) = pass(&source, &corpus, &options(1));
    let (parallel_report, _, parallel_s) = pass(&source, &corpus, &options(jobs));
    let identical = serial_report == parallel_report;

    // Corruption sweep: same plan, progressively worse datalogs. The clean
    // level carries the headline diagnostic claim; the corrupted levels
    // record how the ranking survives (a single flipped bit can move a
    // small circuit's best match, so they inform rather than gate).
    let mut top = false;
    let sweep: Vec<String> = SWEEP
        .iter()
        .map(|&(mask_rate, flip_rate)| {
            let mut corpus = Vec::new();
            sdd_volume::synthesize(&matrix, &spec(mask_rate, flip_rate), &mut corpus)
                .expect("synthesize sweep corpus");
            let (_, summary, _) = pass(&source, &corpus, &options(1));
            let level_top = systematic_top(&summary, &injected);
            if mask_rate == 0.0 && flip_rate == 0.0 {
                top = level_top;
            }
            format!(
                "{{\"mask_rate\":{mask_rate:.4},\"flip_rate\":{flip_rate:.4},\
                 \"ok\":{},\"top\":{level_top}}}",
                summary.ok,
            )
        })
        .collect();

    format!(
        "{{\"circuit\":\"{}\",\"seed\":{},\"devices\":{},\"faults\":{},\"tests\":{},\
         \"jobs\":{},\"available_parallelism\":{},\"jobs_effective\":{},\
         \"corpus_bytes\":{},\"serial_s\":{:.3},\"parallel_s\":{:.3},\
         \"devices_per_s_jobs1\":{:.1},\"devices_per_s_jobsn\":{:.1},\"speedup\":{:.2},\
         \"ok\":{},\"partial\":{},\"error\":{},\"skipped\":{},\
         \"identical\":{},\"systematic_top\":{},\"sweep\":[{}]}}",
        circuit,
        seed,
        devices,
        faults,
        matrix.test_count(),
        jobs,
        sdd_sim::available_jobs(),
        jobs.min(sdd_sim::available_jobs()),
        corpus.len(),
        serial_s,
        parallel_s,
        devices as f64 / serial_s.max(1e-9),
        devices as f64 / parallel_s.max(1e-9),
        serial_s / parallel_s.max(1e-9),
        summary.ok,
        summary.partial,
        summary.error,
        summary.skipped,
        identical,
        top,
        sweep.join(","),
    )
}

/// Validates a previously written report: the file must exist, look like a
/// single JSON object, carry every numeric key with a finite non-negative
/// value, name a circuit, and claim `identical` and `systematic_top`.
///
/// The workspace has no JSON parser (and takes no dependencies), so this is
/// a schema check by string scanning — exactly strong enough for CI to
/// refuse an empty, truncated, or claim-failing report.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("unreadable: {err}"))?;
    let body = text.trim();
    if !(body.starts_with('{') && body.ends_with('}')) {
        return Err("not a JSON object".to_owned());
    }
    for key in NUMERIC_KEYS {
        let value = field(body, key).ok_or_else(|| format!("missing key {key:?}"))?;
        let number: f64 = value
            .parse()
            .map_err(|_| format!("key {key:?} holds non-numeric {value:?}"))?;
        if !number.is_finite() || number < 0.0 {
            return Err(format!("key {key:?} holds invalid value {number}"));
        }
    }
    match field(body, "circuit") {
        Some(value) if value.starts_with('"') && value.len() > 2 => {}
        _ => return Err("missing or empty key \"circuit\"".to_owned()),
    }
    for claim in ["identical", "systematic_top"] {
        match field(body, claim) {
            Some("true") => {}
            Some(value) => return Err(format!("{claim:?} is {value}, expected true")),
            None => return Err(format!("missing key {claim:?}")),
        }
    }
    if !body.contains("\"sweep\":[{") {
        return Err("missing or empty corruption sweep".to_owned());
    }
    Ok(())
}

/// Extracts the raw value text after `"key":` up to the next top-level
/// delimiter. Sufficient for the flat head of the report this binary
/// writes (every checked key appears before the nested `sweep` array).
fn field<'t>(body: &'t str, key: &str) -> Option<&'t str> {
    let needle = format!("\"{key}\":");
    let start = body.find(&needle)? + needle.len();
    let rest = &body[start..];
    let end = if let Some(tail) = rest.strip_prefix('"') {
        // String value: spans up to and including the closing quote.
        tail.find('"')? + 2
    } else {
        rest.find([',', '}']).unwrap_or(rest.len())
    };
    Some(rest[..end].trim())
}
