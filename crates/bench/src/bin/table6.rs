//! Regenerates the paper's Table 6.
//!
//! ```text
//! cargo run -p sdd-bench --release --bin table6 -- [options]
//!
//!   --circuit <name>   one circuit (default: all sixteen)
//!   --ttype <t>        diag | 10det | both (default: both)
//!   --seed <u64>       generation seed (default: 1)
//!   --calls1 <n>       Procedure 1 restart patience (default: 100, the paper's value)
//!   --lower <n|off>    LOWER cutoff (default: 10, the paper's value)
//!   --jobs <n>         worker threads for simulation + Procedure 1 restarts
//!                      (default: all hardware threads; rows are identical
//!                      for every value)
//!   --fast             preset: --calls1 10, fewer random ATPG blocks
//! ```

use sdd_atpg::AtpgOptions;
use sdd_bench::{run_row, Table6Config, Table6Row, TestSetType};
use sdd_netlist::generator::ISCAS89_PROFILES;

fn main() {
    let mut circuits: Vec<String> = Vec::new();
    let mut ttypes = vec![TestSetType::Diagnostic, TestSetType::TenDetect];
    let mut config = Table6Config {
        jobs: sdd_sim::available_jobs(),
        ..Table6Config::default()
    };

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--circuit" => circuits.push(args.next().expect("--circuit takes a name")),
            "--ttype" => {
                ttypes = match args.next().expect("--ttype takes diag|10det|both").as_str() {
                    "diag" => vec![TestSetType::Diagnostic],
                    "10det" => vec![TestSetType::TenDetect],
                    "both" => vec![TestSetType::Diagnostic, TestSetType::TenDetect],
                    other => {
                        eprintln!("unknown ttype {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => {
                config.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed u64")
            }
            "--calls1" => {
                config.calls1 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--calls1 n")
            }
            "--lower" => {
                let v = args.next().expect("--lower n|off");
                config.lower = if v == "off" {
                    None
                } else {
                    Some(v.parse().expect("n"))
                };
            }
            "--jobs" => config.jobs = args.next().and_then(|s| s.parse().ok()).expect("--jobs n"),
            "--fast" => {
                config.calls1 = 10;
                config.atpg = AtpgOptions {
                    max_random_blocks: 24,
                    ..AtpgOptions::default()
                };
            }
            other => {
                eprintln!("unknown option {other:?}");
                std::process::exit(2);
            }
        }
    }
    if circuits.is_empty() {
        circuits = ISCAS89_PROFILES.iter().map(|p| p.name.to_owned()).collect();
    }

    println!(
        "Table 6 reproduction (seed {}, LOWER {:?}, CALLS_1 {})",
        config.seed, config.lower, config.calls1
    );
    println!("sizes in bits; `ind:` columns are indistinguished fault pairs\n");
    println!("{}", Table6Row::header());
    for circuit in &circuits {
        for &ttype in &ttypes {
            match run_row(circuit, ttype, &config) {
                Some(row) => println!("{}", row.paper_line()),
                None => eprintln!("{circuit}: unknown circuit, skipped"),
            }
        }
    }
}
