//! Dictionary load-time comparison: parsing the v1 text format vs. decoding
//! the binary `.sddb` store, plus the cold-start cost of the two byte
//! ownership modes — full owned read + decode versus `mmap` + first row.
//!
//! ```text
//! cargo run -p sdd-bench --release --bin load_bench -- [circuit] [seed] [reps]
//!     [--out report.json] [--check report.json]
//! ```
//!
//! Emits one JSON object on stdout (and to `--out` when given) so CI can
//! archive and diff the numbers:
//!
//! ```json
//! {"circuit":"s953","faults":1079,"tests":203,
//!  "text_bytes":292384,"binary_bytes":37120,
//!  "text_parse_us":1201.3,"binary_read_us":63.7,"speedup":18.9,
//!  "mmap_supported":true,"owned_cold_us":88.1,"mmap_cold_us":21.4,
//!  "first_row_identical":true}
//! ```
//!
//! The text-vs-binary pair starts from bytes already in memory, so that
//! comparison is parse/decode cost alone. The cold pair starts from a file
//! on disk: `owned_cold_us` reads the whole file into a `Vec` and decodes
//! every row (the `--mmap off` serve path), `mmap_cold_us` maps the file
//! and materializes only the first signature row through the lazy reader
//! (the `--mmap on` serve path before any decode) — the latency gap is what
//! deferring residency buys. `first_row_identical` is the correctness
//! claim: the row read through the mapping equals the decoded one. On a
//! target without mmap both cold points use owned reads and
//! `mmap_supported` records why they converge.

use std::time::Instant;

use same_different::Experiment;
use sdd_core::{io as dict_io, Procedure1Options};
use sdd_store::{MmapMode, SddbReader, StoredDictionary};

/// Keys [`check`] requires to hold a finite, non-negative number.
const NUMERIC_KEYS: &[&str] = &[
    "faults",
    "tests",
    "text_bytes",
    "binary_bytes",
    "text_parse_us",
    "binary_read_us",
    "speedup",
    "owned_cold_us",
    "mmap_cold_us",
];

fn main() {
    let mut positional = Vec::new();
    let mut out: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = Some(args.next().expect("--out takes a path")),
            "--check" => check_path = Some(args.next().expect("--check takes a path")),
            other => positional.push(other.to_owned()),
        }
    }
    if let Some(path) = check_path {
        match check(&path) {
            Ok(()) => println!("{path}: ok"),
            Err(why) => {
                eprintln!("{path}: {why}");
                std::process::exit(1);
            }
        }
        return;
    }
    let circuit = positional
        .first()
        .cloned()
        .unwrap_or_else(|| "s953".to_owned());
    let seed: u64 = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let reps: u32 = positional.get(2).and_then(|s| s.parse().ok()).unwrap_or(20);

    let report = run(&circuit, seed, reps);
    println!("{report}");
    if let Some(out) = out {
        std::fs::write(&out, format!("{report}\n")).expect("write report");
        eprintln!("wrote {out}");
    }
}

fn run(circuit: &str, seed: u64, reps: u32) -> String {
    let exp = Experiment::iscas89(circuit, seed)
        .unwrap_or_else(|| Experiment::new(sdd_netlist::library::c17()));
    let tests = exp.diagnostic_tests(&Default::default());
    let suite = exp.build_dictionaries(
        &tests.tests,
        &Procedure1Options {
            calls1: 3,
            ..Default::default()
        },
    );
    let dictionary = suite.same_different;

    let text = dict_io::write_same_different(&dictionary);
    let binary = sdd_store::encode(&StoredDictionary::SameDifferent(dictionary.clone())).unwrap();

    // One warm-up of each path keeps first-touch effects out of the timings.
    assert_eq!(dict_io::read_same_different(&text).unwrap(), dictionary);
    match sdd_store::decode(&binary).unwrap() {
        StoredDictionary::SameDifferent(d) => assert_eq!(d, dictionary),
        other => panic!("unexpected kind {:?}", other.kind()),
    }

    let start = Instant::now();
    for _ in 0..reps {
        let parsed = dict_io::read_same_different(&text).unwrap();
        std::hint::black_box(&parsed);
    }
    let text_parse_us = start.elapsed().as_secs_f64() * 1e6 / f64::from(reps);

    let start = Instant::now();
    for _ in 0..reps {
        let decoded = sdd_store::decode(&binary).unwrap();
        std::hint::black_box(&decoded);
    }
    let binary_read_us = start.elapsed().as_secs_f64() * 1e6 / f64::from(reps);

    // Cold-start pair: the same `.sddb` from disk, owned vs mapped.
    let dir = std::env::temp_dir().join(format!("sdd-load-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let path = dir.join("bench.sddb");
    std::fs::write(&path, &binary).expect("write bench dictionary");
    let mapped_mode = if sdd_store::mmap_supported() {
        MmapMode::On
    } else {
        MmapMode::Off
    };

    let start = Instant::now();
    for _ in 0..reps {
        let bytes = sdd_store::read_dictionary_bytes(&path, MmapMode::Off).expect("owned read");
        let decoded = sdd_store::decode(bytes.as_slice()).expect("decode");
        std::hint::black_box(&decoded);
    }
    let owned_cold_us = start.elapsed().as_secs_f64() * 1e6 / f64::from(reps);

    let start = Instant::now();
    for _ in 0..reps {
        let bytes = sdd_store::read_dictionary_bytes(&path, mapped_mode).expect("mapped read");
        let reader = SddbReader::open_unverified(&bytes).expect("open reader");
        let row = reader.signature(0).expect("first row");
        std::hint::black_box(&row);
    }
    let mmap_cold_us = start.elapsed().as_secs_f64() * 1e6 / f64::from(reps);

    // Correctness claim: the row materialized through the mapping equals
    // the one the full decode produces.
    let bytes = sdd_store::read_dictionary_bytes(&path, mapped_mode).expect("mapped read");
    let reader = SddbReader::open(&bytes).expect("open reader");
    let first_row_identical = &reader.signature(0).expect("first row") == dictionary.signature(0);
    let _ = std::fs::remove_dir_all(&dir);

    format!(
        "{{\"circuit\":\"{}\",\"faults\":{},\"tests\":{},\
         \"text_bytes\":{},\"binary_bytes\":{},\
         \"text_parse_us\":{:.1},\"binary_read_us\":{:.1},\"speedup\":{:.1},\
         \"mmap_supported\":{},\"owned_cold_us\":{:.1},\"mmap_cold_us\":{:.1},\
         \"first_row_identical\":{}}}",
        exp.circuit().name(),
        dictionary.fault_count(),
        dictionary.test_count(),
        text.len(),
        binary.len(),
        text_parse_us,
        binary_read_us,
        text_parse_us / binary_read_us.max(1e-9),
        sdd_store::mmap_supported(),
        owned_cold_us,
        mmap_cold_us,
        first_row_identical,
    )
}

/// Validates a previously written report: the file must exist, look like a
/// single JSON object, carry every numeric key with a finite non-negative
/// value, name a circuit, and claim `"first_row_identical":true`.
///
/// The workspace has no JSON parser (and takes no dependencies), so this is
/// a schema check by string scanning — exactly strong enough for CI to
/// refuse an empty, truncated, or claim-failing report.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("unreadable: {err}"))?;
    let body = text.trim();
    if !(body.starts_with('{') && body.ends_with('}')) {
        return Err("not a JSON object".to_owned());
    }
    for key in NUMERIC_KEYS {
        let value = field(body, key).ok_or_else(|| format!("missing key {key:?}"))?;
        let number: f64 = value
            .parse()
            .map_err(|_| format!("key {key:?} holds non-numeric {value:?}"))?;
        if !number.is_finite() || number < 0.0 {
            return Err(format!("key {key:?} holds invalid value {number}"));
        }
    }
    match field(body, "circuit") {
        Some(value) if value.starts_with('"') && value.len() > 2 => {}
        _ => return Err("missing or empty key \"circuit\"".to_owned()),
    }
    match field(body, "mmap_supported") {
        Some("true" | "false") => {}
        other => return Err(format!("\"mmap_supported\" is {other:?}, expected a bool")),
    }
    match field(body, "first_row_identical") {
        Some("true") => {}
        Some(value) => return Err(format!("\"first_row_identical\" is {value}, expected true")),
        None => return Err("missing key \"first_row_identical\"".to_owned()),
    }
    Ok(())
}

/// Extracts the raw value text after `"key":` up to the next top-level
/// delimiter. Sufficient for the flat objects this binary writes.
fn field<'t>(body: &'t str, key: &str) -> Option<&'t str> {
    let needle = format!("\"{key}\":");
    let start = body.find(&needle)? + needle.len();
    let rest = &body[start..];
    let end = if let Some(tail) = rest.strip_prefix('"') {
        // String value: spans up to and including the closing quote.
        tail.find('"')? + 2
    } else {
        rest.find([',', '}']).unwrap_or(rest.len())
    };
    Some(rest[..end].trim())
}
