//! Dictionary load-time comparison: parsing the v1 text format vs. decoding
//! the binary `.sddb` store, for the same same/different dictionary.
//!
//! ```text
//! cargo run -p sdd-bench --release --bin load_bench -- [circuit] [seed] [reps]
//! ```
//!
//! Emits one JSON object on stdout so CI can archive and diff the numbers:
//!
//! ```json
//! {"circuit":"s953","faults":1079,"tests":203,
//!  "text_bytes":292384,"binary_bytes":37120,
//!  "text_parse_us":1201.3,"binary_read_us":63.7,"speedup":18.9}
//! ```
//!
//! Both paths start from bytes already in memory, so the comparison is
//! parse/decode cost alone — exactly the work a diagnosis service repeats
//! every time a dictionary is (re)loaded into its registry.

use std::time::Instant;

use same_different::Experiment;
use sdd_core::{io as dict_io, Procedure1Options};
use sdd_store::StoredDictionary;

fn main() {
    let mut args = std::env::args().skip(1);
    let circuit = args.next().unwrap_or_else(|| "s953".to_owned());
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let reps: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(20);

    let exp = Experiment::iscas89(&circuit, seed)
        .unwrap_or_else(|| Experiment::new(sdd_netlist::library::c17()));
    let tests = exp.diagnostic_tests(&Default::default());
    let suite = exp.build_dictionaries(
        &tests.tests,
        &Procedure1Options {
            calls1: 3,
            ..Default::default()
        },
    );
    let dictionary = suite.same_different;

    let text = dict_io::write_same_different(&dictionary);
    let binary = sdd_store::encode(&StoredDictionary::SameDifferent(dictionary.clone()));

    // One warm-up of each path keeps first-touch effects out of the timings.
    assert_eq!(dict_io::read_same_different(&text).unwrap(), dictionary);
    match sdd_store::decode(&binary).unwrap() {
        StoredDictionary::SameDifferent(d) => assert_eq!(d, dictionary),
        other => panic!("unexpected kind {:?}", other.kind()),
    }

    let start = Instant::now();
    for _ in 0..reps {
        let parsed = dict_io::read_same_different(&text).unwrap();
        std::hint::black_box(&parsed);
    }
    let text_parse_us = start.elapsed().as_secs_f64() * 1e6 / f64::from(reps);

    let start = Instant::now();
    for _ in 0..reps {
        let decoded = sdd_store::decode(&binary).unwrap();
        std::hint::black_box(&decoded);
    }
    let binary_read_us = start.elapsed().as_secs_f64() * 1e6 / f64::from(reps);

    println!(
        "{{\"circuit\":\"{}\",\"faults\":{},\"tests\":{},\
         \"text_bytes\":{},\"binary_bytes\":{},\
         \"text_parse_us\":{:.1},\"binary_read_us\":{:.1},\"speedup\":{:.1}}}",
        exp.circuit().name(),
        dictionary.fault_count(),
        dictionary.test_count(),
        text.len(),
        binary.len(),
        text_parse_us,
        binary_read_us,
        text_parse_us / binary_read_us.max(1e-9),
    );
}
