//! Ablation studies for the design choices the paper calls out:
//!
//! 1. the `LOWER` candidate cutoff (speed vs. resolution);
//! 2. the `CALLS_1` restart patience (how many random test orders help);
//! 3. test-order sensitivity of a single Procedure 1 pass;
//! 4. what Procedure 2 adds on top of Procedure 1;
//! 5. response compaction (smaller `m`, the paper's §2 remark);
//! 6. multiple baselines per test (the paper's noted generalization);
//! 7. dictionary column pruning.
//!
//! ```text
//! cargo run -p sdd-bench --release --bin ablations -- [circuit] [seed] [diag|10det]
//! ```
//!
//! Diagnostic sets (the default) are where the procedures have room to act;
//! on 10-detection sets a single pass typically reaches the full-dictionary
//! bound already (which is itself one of the paper's observations).

use same_different::Experiment;
use sdd_atpg::AtpgOptions;
use sdd_core::multi::{select_multi_baselines, MultiBaselineDictionary};
use sdd_core::{
    prune_tests, replace_baselines, select_baselines, select_baselines_once, Procedure1Options,
    SameDifferentDictionary,
};
use sdd_logic::Prng;
use sdd_sim::SpaceCompactor;

fn main() {
    let mut args = std::env::args().skip(1);
    let circuit = args.next().unwrap_or_else(|| "s386".to_owned());
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    let ttype = args.next().unwrap_or_else(|| "diag".to_owned());

    let exp = Experiment::iscas89(&circuit, seed).expect("known circuit");
    let atpg = AtpgOptions {
        seed,
        ..AtpgOptions::default()
    };
    let tests = match ttype.as_str() {
        "10det" => exp.detection_tests(10, &atpg),
        _ => exp.diagnostic_tests(&atpg),
    };
    let matrix = exp.simulate(&tests.tests);
    let full = matrix.full_partition().indistinguished_pairs();
    let pass_fail = matrix.pass_fail_partition().indistinguished_pairs();
    println!(
        "circuit {circuit} ({ttype} set, {} tests, {} faults)\n\
         bounds: full dictionary {full}, pass/fail {pass_fail}\n",
        tests.len(),
        exp.faults().len()
    );

    // ---- Ablation 1: the LOWER cutoff. ----
    println!("LOWER cutoff (single natural-order pass):");
    let order: Vec<usize> = (0..matrix.test_count()).collect();
    for lower in [Some(1), Some(3), Some(10), Some(30), None] {
        let start = std::time::Instant::now();
        let (_, pairs) = select_baselines_once(&matrix, &order, lower);
        println!(
            "  LOWER {:>9}: {pairs:>8} indistinguished ({:.3}s)",
            lower.map_or("exhaustive".to_owned(), |l| l.to_string()),
            start.elapsed().as_secs_f64()
        );
    }

    // ---- Ablation 2: CALLS_1 restart patience. ----
    println!("\nCALLS_1 restart patience (LOWER = 10):");
    for calls1 in [1usize, 5, 20, 100] {
        let start = std::time::Instant::now();
        let s = select_baselines(
            &matrix,
            &Procedure1Options {
                calls1,
                seed,
                ..Procedure1Options::default()
            },
        );
        println!(
            "  CALLS_1 {calls1:>4}: {:>8} indistinguished after {:>4} calls ({:.2}s)",
            s.indistinguished_pairs,
            s.calls,
            start.elapsed().as_secs_f64()
        );
    }

    // ---- Ablation 3: test-order sensitivity. ----
    println!("\ntest-order sensitivity (20 random orders, single pass each):");
    let mut rng = Prng::seed_from_u64(seed);
    let mut order = order;
    let mut results: Vec<u64> = Vec::new();
    for _ in 0..20 {
        rng.shuffle(&mut order);
        results.push(select_baselines_once(&matrix, &order, Some(10)).1);
    }
    results.sort_unstable();
    println!(
        "  best {} / median {} / worst {}  (spread justifies the random restarts)",
        results[0],
        results[results.len() / 2],
        results[results.len() - 1]
    );

    // ---- Ablation 4: Procedure 2's contribution. ----
    println!("\nProcedure 2 on top of Procedure 1:");
    let mut tuned_baselines = Vec::new();
    for calls1 in [1usize, 20] {
        let mut s = select_baselines(
            &matrix,
            &Procedure1Options {
                calls1,
                seed,
                ..Procedure1Options::default()
            },
        );
        let before = s.indistinguished_pairs;
        let after = replace_baselines(&matrix, &mut s.baselines);
        println!(
            "  after CALLS_1 = {calls1:>3}: {before:>8} -> {after:>8} \
             ({} pairs recovered by replacement)",
            before - after
        );
        tuned_baselines = s.baselines;
    }

    // ---- Ablation 5: response compaction (smaller m). ----
    let m_outputs = exp.view().outputs().len();
    println!("\nresponse compaction (m = {m_outputs} outputs folded into c signature bits):");
    for c in [m_outputs, m_outputs.div_ceil(2), m_outputs.div_ceil(4), 1] {
        let compactor = SpaceCompactor::modular(m_outputs, c.max(1));
        let compacted = compactor.apply(&matrix);
        let mut s = select_baselines(
            &compacted,
            &Procedure1Options {
                calls1: 10,
                seed,
                ..Procedure1Options::default()
            },
        );
        let sd = replace_baselines(&compacted, &mut s.baselines);
        println!(
            "  c = {:>3}: full {:>8}  p/f {:>8}  s/d {:>8}  (aliased classes: {})",
            c.max(1),
            compacted.full_partition().indistinguished_pairs(),
            compacted.pass_fail_partition().indistinguished_pairs(),
            sd,
            compactor.aliased_classes(&matrix),
        );
    }

    // ---- Ablation 6: multiple baselines per test. ----
    println!("\nmultiple baselines per test (size = Σ B_j · (n+m) bits):");
    for per_test in [1usize, 2, 3, 5] {
        let baselines = select_multi_baselines(&matrix, per_test);
        let d = MultiBaselineDictionary::build(&matrix, &baselines);
        println!(
            "  B ≤ {per_test}: {:>8} indistinguished, {:>10} bits ({} baselines)",
            d.indistinguished_pairs(),
            d.size_bits(),
            d.baseline_count()
        );
    }

    // ---- Ablation 7: column pruning. ----
    let kept = prune_tests(&matrix, &tuned_baselines);
    let sd = SameDifferentDictionary::build(&matrix, &tuned_baselines);
    println!(
        "\ncolumn pruning: {} of {} test columns carry resolution \
         ({} -> {} bits at unchanged resolution)",
        kept.len(),
        matrix.test_count(),
        sd.size_bits(),
        kept.len() as u64 * (exp.faults().len() as u64 + m_outputs as u64),
    );
}
