//! Experiment harness for the same-different workspace.
//!
//! The [`table6`] module regenerates the paper's Table 6 — per circuit and
//! test-set type: the test count, the sizes of the full / pass-fail /
//! same-different dictionaries, and the fault pairs left indistinguished by
//! each (with Procedure 1 alone and after Procedure 2). The binaries wrap
//! it:
//!
//! * `cargo run -p sdd-bench --release --bin table6 [-- --circuit s953 --ttype 10det]`
//! * `cargo run -p sdd-bench --release --bin ablations`
//!
//! Criterion micro-benchmarks for the underlying engines live in
//! `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod table6;

pub use table6::{run_row, Table6Config, Table6Row, TestSetType};
