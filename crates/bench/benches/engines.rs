//! Criterion micro-benchmarks for the engines behind Table 6: fault
//! simulation throughput, baseline selection (Procedures 1 and 2),
//! dictionary construction, and diagnosis lookups.
//!
//! These quantify the cost model the paper argues from: dictionary
//! construction is a one-time offline cost, lookups are cheap, and the
//! same/different dictionary's extra cost over pass/fail is baseline
//! selection only.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use sdd_atpg::{random_patterns, AtpgOptions, Podem};
use sdd_core::{
    replace_baselines_pass, select_baselines_once, PassFailDictionary, SameDifferentDictionary,
};
use sdd_logic::PatternBlock;
use sdd_sim::{Engine, Partition};
use same_different::Experiment;

fn fixture(name: &str) -> (Experiment, Vec<sdd_logic::BitVec>) {
    let exp = Experiment::iscas89(name, 1).expect("known circuit");
    let mut rng = StdRng::seed_from_u64(7);
    let width = exp.view().inputs().len();
    let tests = random_patterns(width, 128, &mut rng);
    (exp, tests)
}

fn bench_fault_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_simulation");
    group.sample_size(10);
    for name in ["s298", "s641", "s1423"] {
        let (exp, tests) = fixture(name);
        group.bench_function(format!("ppsfp_block_{name}"), |b| {
            let width = exp.view().inputs().len();
            let mut engine = Engine::new(exp.circuit(), exp.view());
            engine.load_block(&PatternBlock::from_patterns(width, &tests[..64]));
            let faults: Vec<_> = exp
                .faults()
                .iter()
                .map(|&id| exp.universe().fault(id))
                .collect();
            b.iter(|| {
                let mut detected = 0u32;
                for &fault in &faults {
                    if engine.run_fault(fault).detect != 0 {
                        detected += 1;
                    }
                }
                black_box(detected)
            });
        });
        group.bench_function(format!("response_matrix_{name}"), |b| {
            b.iter(|| black_box(exp.simulate(&tests)));
        });
    }
    group.finish();
}

fn bench_baseline_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_selection");
    group.sample_size(20);
    for name in ["s298", "s641"] {
        let (exp, tests) = fixture(name);
        let matrix = exp.simulate(&tests);
        let order: Vec<usize> = (0..matrix.test_count()).collect();
        group.bench_function(format!("procedure1_pass_{name}"), |b| {
            b.iter(|| black_box(select_baselines_once(&matrix, &order, Some(10))));
        });
        group.bench_function(format!("procedure1_exhaustive_{name}"), |b| {
            b.iter(|| black_box(select_baselines_once(&matrix, &order, None)));
        });
        let (baselines, _) = select_baselines_once(&matrix, &order, Some(10));
        group.bench_function(format!("procedure2_pass_{name}"), |b| {
            b.iter_batched(
                || baselines.clone(),
                |mut baselines| black_box(replace_baselines_pass(&matrix, &mut baselines)),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_dictionaries(c: &mut Criterion) {
    let mut group = c.benchmark_group("dictionaries");
    group.sample_size(20);
    let (exp, tests) = fixture("s641");
    let matrix = exp.simulate(&tests);
    let order: Vec<usize> = (0..matrix.test_count()).collect();
    let (baselines, _) = select_baselines_once(&matrix, &order, Some(10));

    group.bench_function("build_pass_fail_s641", |b| {
        b.iter(|| black_box(PassFailDictionary::build(&matrix)));
    });
    group.bench_function("build_same_different_s641", |b| {
        b.iter(|| black_box(SameDifferentDictionary::build(&matrix, &baselines)));
    });

    let sd = SameDifferentDictionary::build(&matrix, &baselines);
    let pf = PassFailDictionary::build(&matrix);
    let observed = pf.signature(3).clone();
    group.bench_function("diagnose_pass_fail_s641", |b| {
        b.iter(|| black_box(pf.diagnose(&observed)));
    });
    let responses: Vec<_> = (0..matrix.test_count())
        .map(|t| matrix.response(t, matrix.class(t, 3)))
        .collect();
    group.bench_function("diagnose_same_different_s641", |b| {
        b.iter(|| black_box(sd.diagnose(&responses)));
    });
    group.finish();
}

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    let labels: Vec<u32> = (0..10_000u32).map(|i| i % 97).collect();
    group.bench_function("refine_10k", |b| {
        b.iter_batched(
            || Partition::unit(10_000),
            |mut p| {
                p.refine(&labels);
                black_box(p)
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_atpg(c: &mut Criterion) {
    let mut group = c.benchmark_group("atpg");
    group.sample_size(10);
    let (exp, _) = fixture("s298");
    group.bench_function("podem_all_faults_s298", |b| {
        b.iter(|| {
            let mut podem = Podem::new(exp.circuit(), exp.view());
            let mut rng = StdRng::seed_from_u64(3);
            let mut found = 0u32;
            for &id in exp.faults() {
                if podem
                    .generate(exp.universe().fault(id), &mut rng)
                    .test()
                    .is_some()
                {
                    found += 1;
                }
            }
            black_box(found)
        });
    });
    group.bench_function("diagnostic_testset_s208", |b| {
        let exp = Experiment::iscas89("s208", 1).expect("known circuit");
        b.iter(|| black_box(exp.diagnostic_tests(&AtpgOptions::default())));
    });
    group.finish();
}

fn bench_alternative_engines(c: &mut Criterion) {
    // The three fault-simulation strategies and the two ATPG engines,
    // head to head on the same circuit.
    let mut group = c.benchmark_group("alternative_engines");
    group.sample_size(10);
    let (exp, tests) = fixture("s298");
    let width = exp.view().inputs().len();

    group.bench_function("deductive_block_s298", |b| {
        b.iter(|| {
            let mut detected = 0usize;
            for test in &tests[..64] {
                detected += sdd_sim::deductive::deduce(
                    exp.circuit(),
                    exp.view(),
                    exp.universe(),
                    test,
                )
                .detected()
                .len();
            }
            black_box(detected)
        });
    });
    group.bench_function("ppsfp_block_equivalent_s298", |b| {
        let mut engine = Engine::new(exp.circuit(), exp.view());
        engine.load_block(&PatternBlock::from_patterns(width, &tests[..64]));
        let faults: Vec<_> = exp
            .universe()
            .iter()
            .map(|(_, fault)| fault)
            .collect();
        b.iter(|| {
            let mut detections = 0u32;
            for &fault in &faults {
                detections += engine.run_fault(fault).detect.count_ones();
            }
            black_box(detections)
        });
    });
    group.bench_function("sat_atpg_20_faults_s298", |b| {
        let targets: Vec<_> = exp
            .faults()
            .iter()
            .take(20)
            .map(|&id| exp.universe().fault(id))
            .collect();
        b.iter(|| {
            let mut found = 0u32;
            for &fault in &targets {
                if sdd_atpg::sat::generate_sat(exp.circuit(), exp.view(), fault)
                    .test()
                    .is_some()
                {
                    found += 1;
                }
            }
            black_box(found)
        });
    });
    group.bench_function("podem_20_faults_s298", |b| {
        let targets: Vec<_> = exp
            .faults()
            .iter()
            .take(20)
            .map(|&id| exp.universe().fault(id))
            .collect();
        b.iter(|| {
            let mut podem = Podem::new(exp.circuit(), exp.view());
            let mut rng = StdRng::seed_from_u64(5);
            let mut found = 0u32;
            for &fault in &targets {
                if podem.generate(fault, &mut rng).test().is_some() {
                    found += 1;
                }
            }
            black_box(found)
        });
    });
    group.finish();
}

fn bench_response_matrix_simulate(c: &mut Criterion) {
    // The cost of the whole Table 6 inner loop on one mid-size circuit.
    let mut group = c.benchmark_group("table6_inner");
    group.sample_size(10);
    let (exp, tests) = fixture("s953");
    group.bench_function("simulate_and_select_s953", |b| {
        b.iter(|| {
            let matrix = exp.simulate(&tests);
            let order: Vec<usize> = (0..matrix.test_count()).collect();
            black_box(select_baselines_once(&matrix, &order, Some(10)))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fault_simulation,
    bench_baseline_selection,
    bench_dictionaries,
    bench_partition,
    bench_atpg,
    bench_alternative_engines,
    bench_response_matrix_simulate,
);
criterion_main!(benches);
