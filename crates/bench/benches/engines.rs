//! Micro-benchmarks for the engines behind Table 6: fault simulation
//! throughput, baseline selection (Procedures 1 and 2), dictionary
//! construction, and diagnosis lookups.
//!
//! These quantify the cost model the paper argues from: dictionary
//! construction is a one-time offline cost, lookups are cheap, and the
//! same/different dictionary's extra cost over pass/fail is baseline
//! selection only.
//!
//! The harness is dependency-free (`harness = false`): each scenario is
//! timed with [`std::time::Instant`] over a fixed number of iterations and
//! reported as mean wall-clock time per iteration.

use std::hint::black_box;
use std::time::Instant;

use same_different::Experiment;
use sdd_atpg::{random_patterns, AtpgOptions, Podem};
use sdd_core::{
    replace_baselines_pass, select_baselines_once, PassFailDictionary, SameDifferentDictionary,
};
use sdd_logic::{PatternBlock, Prng};
use sdd_sim::{Engine, Partition};

/// Times `iters` runs of `f` and prints the mean per-iteration time.
fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    // One warm-up iteration keeps first-touch page faults out of the timing.
    black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let total = start.elapsed();
    println!(
        "{name:<40} {:>12.3} ms/iter  ({iters} iters)",
        total.as_secs_f64() * 1e3 / f64::from(iters)
    );
}

fn fixture(name: &str) -> (Experiment, Vec<sdd_logic::BitVec>) {
    let exp = Experiment::iscas89(name, 1).expect("known circuit");
    let mut rng = Prng::seed_from_u64(7);
    let width = exp.view().inputs().len();
    let tests = random_patterns(width, 128, &mut rng);
    (exp, tests)
}

fn bench_fault_simulation() {
    for name in ["s298", "s641", "s1423"] {
        let (exp, tests) = fixture(name);
        let width = exp.view().inputs().len();
        let mut engine = Engine::new(exp.circuit(), exp.view());
        engine.load_block(&PatternBlock::from_patterns(width, &tests[..64]));
        let faults: Vec<_> = exp
            .faults()
            .iter()
            .map(|&id| exp.universe().fault(id))
            .collect();
        bench(&format!("ppsfp_block_{name}"), 10, || {
            let mut detected = 0u32;
            for &fault in &faults {
                if engine.run_fault(fault).detect != 0 {
                    detected += 1;
                }
            }
            detected
        });
        bench(&format!("response_matrix_{name}"), 10, || {
            exp.simulate(&tests)
        });
    }
}

fn bench_baseline_selection() {
    for name in ["s298", "s641"] {
        let (exp, tests) = fixture(name);
        let matrix = exp.simulate(&tests);
        let order: Vec<usize> = (0..matrix.test_count()).collect();
        bench(&format!("procedure1_pass_{name}"), 20, || {
            select_baselines_once(&matrix, &order, Some(10))
        });
        bench(&format!("procedure1_exhaustive_{name}"), 20, || {
            select_baselines_once(&matrix, &order, None)
        });
        let (baselines, _) = select_baselines_once(&matrix, &order, Some(10));
        bench(&format!("procedure2_pass_{name}"), 20, || {
            let mut baselines = baselines.clone();
            replace_baselines_pass(&matrix, &mut baselines)
        });
    }
}

fn bench_dictionaries() {
    let (exp, tests) = fixture("s641");
    let matrix = exp.simulate(&tests);
    let order: Vec<usize> = (0..matrix.test_count()).collect();
    let (baselines, _) = select_baselines_once(&matrix, &order, Some(10));

    bench("build_pass_fail_s641", 20, || {
        PassFailDictionary::build(&matrix)
    });
    bench("build_same_different_s641", 20, || {
        SameDifferentDictionary::build(&matrix, &baselines)
    });

    let sd = SameDifferentDictionary::build(&matrix, &baselines);
    let pf = PassFailDictionary::build(&matrix);
    let observed = pf.signature(3).clone();
    bench("diagnose_pass_fail_s641", 20, || pf.diagnose(&observed));
    let responses: Vec<_> = (0..matrix.test_count())
        .map(|t| matrix.response(t, matrix.class(t, 3)))
        .collect();
    bench("diagnose_same_different_s641", 20, || {
        sd.diagnose(&responses)
    });
}

fn bench_partition() {
    let labels: Vec<u32> = (0..10_000u32).map(|i| i % 97).collect();
    bench("partition_refine_10k", 50, || {
        let mut p = Partition::unit(10_000);
        p.refine(&labels);
        p
    });
}

fn bench_atpg() {
    let (exp, _) = fixture("s298");
    bench("podem_all_faults_s298", 10, || {
        let mut podem = Podem::new(exp.circuit(), exp.view());
        let mut rng = Prng::seed_from_u64(3);
        let mut found = 0u32;
        for &id in exp.faults() {
            if podem
                .generate(exp.universe().fault(id), &mut rng)
                .test()
                .is_some()
            {
                found += 1;
            }
        }
        found
    });
    let s208 = Experiment::iscas89("s208", 1).expect("known circuit");
    bench("diagnostic_testset_s208", 10, || {
        s208.diagnostic_tests(&AtpgOptions::default())
    });
}

fn bench_alternative_engines() {
    // The three fault-simulation strategies and the two ATPG engines,
    // head to head on the same circuit.
    let (exp, tests) = fixture("s298");
    let width = exp.view().inputs().len();

    bench("deductive_block_s298", 10, || {
        let mut detected = 0usize;
        for test in &tests[..64] {
            detected += sdd_sim::deductive::deduce(exp.circuit(), exp.view(), exp.universe(), test)
                .detected()
                .len();
        }
        detected
    });
    let mut engine = Engine::new(exp.circuit(), exp.view());
    engine.load_block(&PatternBlock::from_patterns(width, &tests[..64]));
    let all_faults: Vec<_> = exp.universe().iter().map(|(_, fault)| fault).collect();
    bench("ppsfp_block_equivalent_s298", 10, || {
        let mut detections = 0u32;
        for &fault in &all_faults {
            detections += engine.run_fault(fault).detect.count_ones();
        }
        detections
    });
    let targets: Vec<_> = exp
        .faults()
        .iter()
        .take(20)
        .map(|&id| exp.universe().fault(id))
        .collect();
    bench("sat_atpg_20_faults_s298", 10, || {
        let mut found = 0u32;
        for &fault in &targets {
            if sdd_atpg::sat::generate_sat(exp.circuit(), exp.view(), fault)
                .test()
                .is_some()
            {
                found += 1;
            }
        }
        found
    });
    bench("podem_20_faults_s298", 10, || {
        let mut podem = Podem::new(exp.circuit(), exp.view());
        let mut rng = Prng::seed_from_u64(5);
        let mut found = 0u32;
        for &fault in &targets {
            if podem.generate(fault, &mut rng).test().is_some() {
                found += 1;
            }
        }
        found
    });
}

fn bench_response_matrix_simulate() {
    // The cost of the whole Table 6 inner loop on one mid-size circuit.
    let (exp, tests) = fixture("s953");
    bench("simulate_and_select_s953", 10, || {
        let matrix = exp.simulate(&tests);
        let order: Vec<usize> = (0..matrix.test_count()).collect();
        select_baselines_once(&matrix, &order, Some(10))
    });
}

fn main() {
    bench_fault_simulation();
    bench_baseline_selection();
    bench_dictionaries();
    bench_partition();
    bench_atpg();
    bench_alternative_engines();
    bench_response_matrix_simulate();
}
